#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

/// \file plan.hpp
/// Deterministic fault injection for the virtual-time simulator.
///
/// A FaultPlan is a list of faults, each keyed by (rank, nth send of that
/// rank): when rank r issues its nth point-to-point send, the matching
/// fault fires — once. Because the trigger is a rank-local ordinal and
/// every generator is seeded, a plan replays identically across runs and
/// thread counts; there is no wall-clock or randomness at fire time.
///
/// Supported fault kinds (FaultKind):
///   kDelay      — the message becomes visible `seconds` of virtual time
///                 late (models a slow link)
///   kDuplicate  — the message is delivered twice (the engine detects the
///                 duplicate by sequence number and drops it)
///   kBitFlip    — one payload bit is flipped in flight (the engine
///                 detects the mismatch by checksum and raises
///                 MessageCorruptError)
///   kStraggle   — the sending rank loses `seconds` of virtual time
///                 before the send (models a slow node)
///   kCrash      — the rank dies (InjectedCrashError) instead of sending
///
/// Mirroring the tracer design, an installed plan costs the hot path one
/// pointer test per send/receive; with no plan there is no framing, no
/// checksums and no counters — byte streams are identical to a build
/// without this file.
///
/// During a run each rank touches only its own slot of the per-rank state
/// (lock-free); the merged injected()/detected() logs are valid after the
/// run finishes.

namespace ardbt::fault {

/// What gets injected.
enum class FaultKind : std::uint8_t {
  kDelay,
  kDuplicate,
  kBitFlip,
  kStraggle,
  kCrash,
};

/// Stable lowercase name ("delay", "duplicate", "bit-flip", ...).
std::string_view to_string(FaultKind kind);

/// One planned fault. Fires when `rank` issues its `nth_send`-th
/// (0-based) send; `fired` flips so a retried run does not hit it again.
struct FaultSpec {
  FaultKind kind = FaultKind::kDelay;
  int rank = 0;
  std::uint64_t nth_send = 0;
  double seconds = 0.0;    ///< delay/straggle magnitude (virtual seconds)
  std::uint64_t bit = 0;   ///< payload bit index for kBitFlip (mod size)
  bool fired = false;
};

/// One thing that actually happened — either an injection at a sender or
/// a detection at a receiver. Collected for the run report.
struct FaultEvent {
  FaultKind kind = FaultKind::kDelay;
  int rank = -1;        ///< rank on which the event happened
  int peer = -1;        ///< destination (injected) / source (detected)
  int tag = -1;
  std::uint64_t seq = 0;
  double vtime = 0.0;
  bool detected = false;  ///< false = injected at sender, true = detected at receiver
};

/// The actions Comm::send_bytes must apply for one send.
struct SendActions {
  double delay_seconds = 0.0;
  double straggle_seconds = 0.0;
  bool duplicate = false;
  bool crash = false;
  bool flip = false;
  std::uint64_t flip_bit = 0;
  int injected_count = 0;  ///< how many specs fired on this send (stats)
};

/// Seeded, deterministic fault schedule. Build one with the fluent
/// helpers (or FaultPlan::random), install it via
/// mpsim::EngineOptions::fault_plan, read the logs after the run.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Fluent builders. `nth_send` counts that rank's sends from 0
  /// (collectives included — a barrier on 4 ranks is 2 sends per rank).
  FaultPlan& delay_message(int rank, std::uint64_t nth_send, double seconds);
  FaultPlan& duplicate_message(int rank, std::uint64_t nth_send);
  FaultPlan& flip_bit(int rank, std::uint64_t nth_send, std::uint64_t bit);
  FaultPlan& straggle(int rank, std::uint64_t nth_send, double seconds);
  FaultPlan& crash_before_send(int rank, std::uint64_t nth_send);
  FaultPlan& add(FaultSpec spec);

  /// Deterministic mixed plan: `count` faults over `nranks` ranks, kinds
  /// and targets drawn from a splitmix64 stream of `seed`. Crash faults
  /// are included only when `include_crash` (they abort the run and need
  /// a retrying caller).
  static FaultPlan random(std::uint64_t seed, int nranks, int count, bool include_crash = false);

  bool empty() const { return specs_.size() == 0; }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

  /// Engine-called before the rank threads start: sizes per-rank state.
  /// Send ordinals and the fired flags persist across runs on purpose so
  /// a retried run does not re-trigger one-shot faults.
  void prepare(int nranks);

  /// Called by Comm::send_bytes on rank `rank` (its thread only): advance
  /// the rank's send ordinal, fire any matching faults, log them.
  SendActions on_send(int rank, int dst, int tag, double vtime);

  /// Called by Comm::recv_bytes when it detects (and survives) an
  /// injected fault, or by the engine for deadline misses.
  void record_detected(int rank, FaultKind kind, int src, int tag, std::uint64_t seq,
                       double vtime);

  /// Per-(sender dst) sequence number used for the wire framing; owned
  /// here so ordinals survive engine re-runs (retries).
  std::uint64_t next_seq(int rank, int dst);

  /// Logs merged over ranks in (rank, time) order; call after the run.
  std::vector<FaultEvent> injected() const;
  std::vector<FaultEvent> detected() const;
  /// injected().size() + detected().size() without the copies.
  std::size_t event_count() const;

 private:
  struct RankState {
    std::uint64_t sends = 0;
    std::vector<std::uint64_t> send_seq;  ///< per-destination next sequence number
    std::vector<FaultEvent> injected;
    std::vector<FaultEvent> detected;
  };

  std::vector<FaultSpec> specs_;
  std::vector<RankState> per_rank_;
};

/// FNV-1a 64-bit checksum used for in-flight corruption detection.
std::uint64_t checksum(std::span<const std::byte> bytes);

}  // namespace ardbt::fault
