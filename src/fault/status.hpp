#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <optional>

/// \file status.hpp
/// Error taxonomy of the robustness layer (docs/ROBUSTNESS.md).
///
/// Everything that can go wrong at runtime in a solve — a singular or
/// non-SPD pivot block, a size-mismatched or corrupted message, an
/// injected rank crash, a missed deadline — maps to one ErrorCode and one
/// exception type derived from SolveError, so callers can dispatch on
/// `code()` without parsing strings. The library never reports a runtime
/// numerical/communication failure through `assert` (which is a silent
/// no-op under NDEBUG); dense-kernel shape mismatches throw
/// kShapeMismatch in every build mode (src/la/{gemm,gemv,lu}.cpp), so a
/// dimension bug surfaces identically in release and debug runs.
///
/// This module sits below every other library (no la/mpsim/obs
/// dependencies) so all layers share one vocabulary.

namespace ardbt::fault {

/// Every failure class the stack can report.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kSingularPivot,    ///< exactly singular pivot met during a factorization/solve
  kNonSpdPivot,      ///< Cholesky pivot not positive definite
  kBreakdown,        ///< pivot growth above the configured breakdown threshold
  kMessageSize,      ///< received payload size does not match the receive buffer
  kMessageCorrupt,   ///< payload checksum mismatch (detected bit flip)
  kInjectedCrash,    ///< a FaultPlan crashed this rank before a send
  kDeadline,         ///< a blocked receive exceeded its wall-clock deadline
  kInternal,         ///< invariant violation that is not a caller error
  kShapeMismatch,    ///< kernel called with incompatible matrix dimensions
  kInvalidArgument,  ///< malformed user input (e.g. a garbage numeric flag)
  kTagCollision,     ///< two in-flight scans claimed the same message tag
  // Service-boundary outcomes (docs/SERVICE.md). These classify why the
  // admission controller or executor refused/abandoned a request; they are
  // terminal decisions about *this* request, so none of them is transient.
  kDeadlineInfeasible,  ///< admission: the deadline cannot be met even if started now
  kDeadlineExceeded,    ///< executor: the deadline passed while the request was queued
  kOverload,            ///< admission: shed by the overload controller
  kCircuitOpen,         ///< admission: the tenant's circuit breaker is open
};

/// Stable lowercase name ("ok", "singular-pivot", ...).
std::string_view to_string(ErrorCode code);

/// Transient failures are worth retrying at the run level: the fault was
/// injected into (or detected on) the communication path and a re-run may
/// not hit it again. Numerical failures are deterministic and are not,
/// and neither are service-boundary decisions (a shed or expired request
/// must not be blindly re-queued — the retry-budget machinery decides).
bool is_transient(ErrorCode code);

class Status;

/// Status-level overload: the classification every layer above the raw
/// code should call, so a future split of one code into transient and
/// permanent sub-cases (via the message or a detail field) needs exactly
/// one edit here.
bool is_transient(const Status& status);

/// Lightweight status value for APIs that report rather than throw
/// (per-solve outcomes in the run report).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Base of every structured runtime failure. Derives from
/// std::runtime_error so existing catch sites keep working.
class SolveError : public std::runtime_error {
 public:
  SolveError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  ErrorCode code() const { return code_; }
  Status status() const { return Status::error(code_, what()); }

 private:
  ErrorCode code_;
};

/// A factorization met a singular (or, for Cholesky, non-SPD) pivot.
/// `block_row` is the block row of the failing pivot block (-1 when the
/// failure is not block structured), `pivot_index` the scalar pivot index
/// inside it, `growth` the pivot-growth factor observed up to the failure.
class SingularPivotError : public SolveError {
 public:
  SingularPivotError(ErrorCode code, const std::string& where, std::int64_t block_row,
                     std::int64_t pivot_index, double growth);

  std::int64_t block_row() const { return block_row_; }
  std::int64_t pivot_index() const { return pivot_index_; }
  double growth() const { return growth_; }

 private:
  std::int64_t block_row_;
  std::int64_t pivot_index_;
  double growth_;
};

/// Pivot growth crossed the breakdown threshold (factorization completed
/// but its accuracy is suspect).
class BreakdownError : public SolveError {
 public:
  BreakdownError(const std::string& where, double growth, double threshold);

  double growth() const { return growth_; }
  double threshold() const { return threshold_; }

 private:
  double growth_;
  double threshold_;
};

/// A dense kernel was handed views with incompatible dimensions. These
/// used to be bare `assert`s that compiled out under NDEBUG and let the
/// kernels write out of bounds; the checks are now always on (a handful of
/// integer compares, invisible next to the O(M^3) work they guard).
class ShapeMismatchError : public SolveError {
 public:
  /// `where` names the kernel ("la::gemm"), `detail` the violated
  /// relation ("a.cols() == b.rows()"), and the dims the offending values.
  ShapeMismatchError(const char* where, const char* detail, std::int64_t got,
                     std::int64_t expected);

  std::int64_t got() const { return got_; }
  std::int64_t expected() const { return expected_; }

 private:
  std::int64_t got_;
  std::int64_t expected_;
};

/// Malformed caller input at an API boundary (a null batch pointer, a
/// non-positive rank count). These are caller bugs rather than runtime
/// faults, but they surface through the same taxonomy so dispatch on
/// `code()` covers every throw site in the stack.
class InvalidArgumentError : public SolveError {
 public:
  /// `where` names the API ("core::Session"), `detail` the violated
  /// precondition ("nranks must be positive").
  InvalidArgumentError(const char* where, const std::string& detail)
      : SolveError(ErrorCode::kInvalidArgument, std::string(where) + ": " + detail) {}
};

/// Two concurrently in-flight scans (or any two registered users) claimed
/// the same message tag on one rank. Without the registry this is silent
/// message cross-matching: the FIFO mailbox hands scan A a payload that
/// belongs to scan B and both produce garbage. A collision is a protocol
/// bug in the caller's schedule, never a runtime fault, so it is not
/// transient.
class TagCollisionError : public SolveError {
 public:
  TagCollisionError(int rank, int tag)
      : SolveError(ErrorCode::kTagCollision,
                   "rank " + std::to_string(rank) + ": tag " + std::to_string(tag) +
                       " is already registered by an in-flight scan"),
        rank_(rank),
        tag_(tag) {}

  int rank() const { return rank_; }
  int tag() const { return tag_; }

 private:
  int rank_;
  int tag_;
};

/// A typed receive got a payload whose size does not match the buffer.
class MessageSizeError : public SolveError {
 public:
  MessageSizeError(int src, int tag, std::size_t expected_bytes, std::size_t got_bytes);

  int src() const { return src_; }
  int tag() const { return tag_; }
  std::size_t expected_bytes() const { return expected_; }
  std::size_t got_bytes() const { return got_; }

 private:
  int src_;
  int tag_;
  std::size_t expected_;
  std::size_t got_;
};

/// Payload checksum mismatch detected on receive.
class MessageCorruptError : public SolveError {
 public:
  MessageCorruptError(int src, int tag, std::uint64_t expected_crc, std::uint64_t got_crc);

  int src() const { return src_; }
  int tag() const { return tag_; }

 private:
  int src_;
  int tag_;
};

/// A FaultPlan crashed this rank before a send.
class InjectedCrashError : public SolveError {
 public:
  explicit InjectedCrashError(int rank);
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// A blocked receive exceeded its wall-clock deadline (hang detector).
class DeadlineError : public SolveError {
 public:
  DeadlineError(int src, int tag, double waited_seconds);

  int src() const { return src_; }
  int tag() const { return tag_; }
  double waited_seconds() const { return waited_; }

 private:
  int src_;
  int tag_;
  double waited_;
};

/// What the solve driver does when breakdown (or a recoverable fault) is
/// detected. See docs/ROBUSTNESS.md for the full ladder.
enum class BreakdownPolicy : std::uint8_t {
  kFailFast,  ///< surface a structured error immediately
  kRefine,    ///< keep the fast factorization, add iterative refinement
  kFallback,  ///< refine, then escalate to the exact banded-LU path
};

/// Stable lowercase name ("failfast", "refine", "fallback").
std::string_view to_string(BreakdownPolicy policy);

/// Inverse of to_string; nullopt on an unknown name.
std::optional<BreakdownPolicy> parse_breakdown_policy(std::string_view name);

/// Classes of online-watchdog alerts (docs/OBSERVABILITY.md). Alerts are
/// advisory — they become structured log records and `watchdog.*`
/// counters, never exceptions — so the taxonomy lives here beside
/// ErrorCode to keep one shared vocabulary across layers.
enum class AlertKind : std::uint8_t {
  kStraggler,       ///< one rank's wait fraction far above the fleet median
  kDeadlineMiss,    ///< a receive exceeded its deadline during the run
  kArenaPressure,   ///< arena high-watermark close to its reserved capacity
  kCostModelDrift,  ///< measured/predicted phase time outside the threshold
  kTraceDrop,       ///< a bounded trace/recorder ring overwrote events
  kShedStorm,       ///< the service shed a large share of offered load
  kBreakerTrip,     ///< a tenant circuit breaker tripped during the run
};

/// Stable lowercase name ("straggler", "deadline-miss", ...).
std::string_view to_string(AlertKind kind);

/// Cheap condition monitoring accumulated while a factorization runs:
/// the extreme pivot magnitudes seen, where the weakest pivot lives, and
/// their ratio as a growth/conditioning proxy. Costs a couple of compares
/// per pivot — never a norm or an inverse — so the sweeps can always
/// leave it on.
struct PivotDiagnostics {
  double min_pivot_abs = std::numeric_limits<double>::infinity();
  double max_pivot_abs = 0.0;
  std::int64_t min_pivot_block_row = -1;  ///< block row holding the weakest pivot
  int singular_info = 0;                  ///< first factorization info != 0, if any

  /// max/min pivot magnitude; infinity once a zero (or no) pivot was seen.
  double growth() const {
    if (singular_info != 0 || min_pivot_abs <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    return max_pivot_abs > 0.0 ? max_pivot_abs / min_pivot_abs : 1.0;
  }

  /// Fold in the pivot extremes of one factored block.
  void observe(double block_min_abs, double block_max_abs, std::int64_t block_row) {
    if (block_min_abs < min_pivot_abs) {
      min_pivot_abs = block_min_abs;
      min_pivot_block_row = block_row;
    }
    if (block_max_abs > max_pivot_abs) max_pivot_abs = block_max_abs;
  }

  /// Merge another accumulator (e.g. the two segment factorizations of an
  /// ARD rank).
  void merge(const PivotDiagnostics& o) {
    if (o.min_pivot_abs < min_pivot_abs) {
      min_pivot_abs = o.min_pivot_abs;
      min_pivot_block_row = o.min_pivot_block_row;
    }
    if (o.max_pivot_abs > max_pivot_abs) max_pivot_abs = o.max_pivot_abs;
    if (singular_info == 0) singular_info = o.singular_info;
  }
};

}  // namespace ardbt::fault
