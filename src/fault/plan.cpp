#include "src/fault/plan.hpp"

#include <algorithm>
#include <cassert>

namespace ardbt::fault {
namespace {

/// splitmix64 — tiny, seedable, and good enough to spread fault targets.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kStraggle:
      return "straggle";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultPlan& FaultPlan::delay_message(int rank, std::uint64_t nth_send, double seconds) {
  return add({.kind = FaultKind::kDelay, .rank = rank, .nth_send = nth_send, .seconds = seconds});
}

FaultPlan& FaultPlan::duplicate_message(int rank, std::uint64_t nth_send) {
  return add({.kind = FaultKind::kDuplicate, .rank = rank, .nth_send = nth_send});
}

FaultPlan& FaultPlan::flip_bit(int rank, std::uint64_t nth_send, std::uint64_t bit) {
  return add({.kind = FaultKind::kBitFlip, .rank = rank, .nth_send = nth_send, .bit = bit});
}

FaultPlan& FaultPlan::straggle(int rank, std::uint64_t nth_send, double seconds) {
  return add(
      {.kind = FaultKind::kStraggle, .rank = rank, .nth_send = nth_send, .seconds = seconds});
}

FaultPlan& FaultPlan::crash_before_send(int rank, std::uint64_t nth_send) {
  return add({.kind = FaultKind::kCrash, .rank = rank, .nth_send = nth_send});
}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  specs_.push_back(spec);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nranks, int count, bool include_crash) {
  FaultPlan plan;
  std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 1;
  const int nkinds = include_crash ? 5 : 4;
  for (int i = 0; i < count; ++i) {
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(splitmix64(state) % static_cast<std::uint64_t>(nkinds));
    spec.rank = static_cast<int>(splitmix64(state) % static_cast<std::uint64_t>(nranks));
    spec.nth_send = splitmix64(state) % 16;
    spec.seconds = 1e-4 * static_cast<double>(1 + splitmix64(state) % 100);
    spec.bit = splitmix64(state) % 512;
    plan.add(spec);
  }
  return plan;
}

void FaultPlan::prepare(int nranks) {
  if (per_rank_.size() == static_cast<std::size_t>(nranks)) return;  // retried run: keep state
  per_rank_.assign(static_cast<std::size_t>(nranks), RankState{});
  for (auto& state : per_rank_) {
    state.send_seq.assign(static_cast<std::size_t>(nranks), 0);
  }
}

SendActions FaultPlan::on_send(int rank, int dst, int tag, double vtime) {
  RankState& state = per_rank_[static_cast<std::size_t>(rank)];
  const std::uint64_t ordinal = state.sends++;
  SendActions actions;
  for (FaultSpec& spec : specs_) {
    if (spec.fired || spec.rank != rank || spec.nth_send != ordinal) continue;
    spec.fired = true;
    actions.injected_count += 1;
    switch (spec.kind) {
      case FaultKind::kDelay:
        actions.delay_seconds += spec.seconds;
        break;
      case FaultKind::kDuplicate:
        actions.duplicate = true;
        break;
      case FaultKind::kBitFlip:
        actions.flip = true;
        actions.flip_bit = spec.bit;
        break;
      case FaultKind::kStraggle:
        actions.straggle_seconds += spec.seconds;
        break;
      case FaultKind::kCrash:
        actions.crash = true;
        break;
    }
    state.injected.push_back({.kind = spec.kind,
                              .rank = rank,
                              .peer = dst,
                              .tag = tag,
                              .seq = ordinal,
                              .vtime = vtime,
                              .detected = false});
  }
  return actions;
}

void FaultPlan::record_detected(int rank, FaultKind kind, int src, int tag, std::uint64_t seq,
                                double vtime) {
  per_rank_[static_cast<std::size_t>(rank)].detected.push_back({.kind = kind,
                                                                .rank = rank,
                                                                .peer = src,
                                                                .tag = tag,
                                                                .seq = seq,
                                                                .vtime = vtime,
                                                                .detected = true});
}

std::uint64_t FaultPlan::next_seq(int rank, int dst) {
  return per_rank_[static_cast<std::size_t>(rank)].send_seq[static_cast<std::size_t>(dst)]++;
}

std::vector<FaultEvent> FaultPlan::injected() const {
  std::vector<FaultEvent> all;
  for (const RankState& state : per_rank_) {
    all.insert(all.end(), state.injected.begin(), state.injected.end());
  }
  return all;
}

std::vector<FaultEvent> FaultPlan::detected() const {
  std::vector<FaultEvent> all;
  for (const RankState& state : per_rank_) {
    all.insert(all.end(), state.detected.begin(), state.detected.end());
  }
  return all;
}

std::size_t FaultPlan::event_count() const {
  std::size_t n = 0;
  for (const RankState& state : per_rank_) {
    n += state.injected.size() + state.detected.size();
  }
  return n;
}

std::uint64_t checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ardbt::fault
