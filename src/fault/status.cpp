#include "src/fault/status.hpp"

#include <cstdio>

namespace ardbt::fault {
namespace {

/// %.6g formatting — std::to_string(double) prints fixed-point, which is
/// unreadable for the huge growth factors these messages carry.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string format_pivot_message(ErrorCode code, const std::string& where, std::int64_t block_row,
                                 std::int64_t pivot_index, double growth) {
  std::string msg = where;
  msg += code == ErrorCode::kNonSpdPivot ? ": non-SPD pivot" : ": singular pivot";
  if (block_row >= 0) msg += " at block row " + std::to_string(block_row);
  if (pivot_index >= 0) msg += " (pivot index " + std::to_string(pivot_index) + ")";
  msg += ", growth " + format_double(growth);
  return msg;
}

}  // namespace

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kSingularPivot:
      return "singular-pivot";
    case ErrorCode::kNonSpdPivot:
      return "non-spd-pivot";
    case ErrorCode::kBreakdown:
      return "breakdown";
    case ErrorCode::kMessageSize:
      return "message-size";
    case ErrorCode::kMessageCorrupt:
      return "message-corrupt";
    case ErrorCode::kInjectedCrash:
      return "injected-crash";
    case ErrorCode::kDeadline:
      return "deadline";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kShapeMismatch:
      return "shape-mismatch";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kTagCollision:
      return "tag-collision";
    case ErrorCode::kDeadlineInfeasible:
      return "deadline-infeasible";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kOverload:
      return "overload";
    case ErrorCode::kCircuitOpen:
      return "circuit-open";
  }
  return "unknown";
}

std::string_view to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kStraggler:
      return "straggler";
    case AlertKind::kDeadlineMiss:
      return "deadline-miss";
    case AlertKind::kArenaPressure:
      return "arena-pressure";
    case AlertKind::kCostModelDrift:
      return "cost-model-drift";
    case AlertKind::kTraceDrop:
      return "trace-drop";
    case AlertKind::kShedStorm:
      return "shed-storm";
    case AlertKind::kBreakerTrip:
      return "breaker-trip";
  }
  return "unknown";
}

bool is_transient(ErrorCode code) {
  switch (code) {
    // Communication-path faults: a re-run sees a clean wire.
    case ErrorCode::kMessageCorrupt:
    case ErrorCode::kInjectedCrash:
    case ErrorCode::kDeadline:
      return true;
    // Numerical failures are deterministic; argument/shape errors are
    // caller bugs; service-boundary decisions (infeasible/expired
    // deadline, shed, open breaker) are terminal for the request.
    case ErrorCode::kOk:
    case ErrorCode::kSingularPivot:
    case ErrorCode::kNonSpdPivot:
    case ErrorCode::kBreakdown:
    case ErrorCode::kMessageSize:
    case ErrorCode::kInternal:
    case ErrorCode::kShapeMismatch:
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kTagCollision:
    case ErrorCode::kDeadlineInfeasible:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kOverload:
    case ErrorCode::kCircuitOpen:
      return false;
  }
  return false;
}

bool is_transient(const Status& status) { return is_transient(status.code()); }

SingularPivotError::SingularPivotError(ErrorCode code, const std::string& where,
                                       std::int64_t block_row, std::int64_t pivot_index,
                                       double growth)
    : SolveError(code, format_pivot_message(code, where, block_row, pivot_index, growth)),
      block_row_(block_row),
      pivot_index_(pivot_index),
      growth_(growth) {}

BreakdownError::BreakdownError(const std::string& where, double growth, double threshold)
    : SolveError(ErrorCode::kBreakdown, where + ": pivot growth " + format_double(growth) +
                                            " exceeds breakdown threshold " +
                                            format_double(threshold)),
      growth_(growth),
      threshold_(threshold) {}

ShapeMismatchError::ShapeMismatchError(const char* where, const char* detail, std::int64_t got,
                                       std::int64_t expected)
    : SolveError(ErrorCode::kShapeMismatch,
                 std::string(where) + ": shape mismatch, " + detail + " violated (got " +
                     std::to_string(got) + ", expected " + std::to_string(expected) + ")"),
      got_(got),
      expected_(expected) {}

MessageSizeError::MessageSizeError(int src, int tag, std::size_t expected_bytes,
                                   std::size_t got_bytes)
    : SolveError(ErrorCode::kMessageSize,
                 "received size mismatch from rank " + std::to_string(src) + " tag " +
                     std::to_string(tag) + ": expected " + std::to_string(expected_bytes) +
                     " bytes, got " + std::to_string(got_bytes)),
      src_(src),
      tag_(tag),
      expected_(expected_bytes),
      got_(got_bytes) {}

MessageCorruptError::MessageCorruptError(int src, int tag, std::uint64_t expected_crc,
                                         std::uint64_t got_crc)
    : SolveError(ErrorCode::kMessageCorrupt,
                 "corrupted payload from rank " + std::to_string(src) + " tag " +
                     std::to_string(tag) + ": checksum " + std::to_string(got_crc) +
                     " != expected " + std::to_string(expected_crc)),
      src_(src),
      tag_(tag) {}

InjectedCrashError::InjectedCrashError(int rank)
    : SolveError(ErrorCode::kInjectedCrash,
                 "rank " + std::to_string(rank) + " crashed before send (injected fault)"),
      rank_(rank) {}

DeadlineError::DeadlineError(int src, int tag, double waited_seconds)
    : SolveError(ErrorCode::kDeadline, "receive from rank " + std::to_string(src) + " tag " +
                                           std::to_string(tag) + " exceeded its deadline after " +
                                           format_double(waited_seconds) + " s"),
      src_(src),
      tag_(tag),
      waited_(waited_seconds) {}

std::string_view to_string(BreakdownPolicy policy) {
  switch (policy) {
    case BreakdownPolicy::kFailFast:
      return "failfast";
    case BreakdownPolicy::kRefine:
      return "refine";
    case BreakdownPolicy::kFallback:
      return "fallback";
  }
  return "unknown";
}

std::optional<BreakdownPolicy> parse_breakdown_policy(std::string_view name) {
  if (name == "failfast") return BreakdownPolicy::kFailFast;
  if (name == "refine") return BreakdownPolicy::kRefine;
  if (name == "fallback") return BreakdownPolicy::kFallback;
  return std::nullopt;
}

}  // namespace ardbt::fault
