#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/fault/status.hpp"

/// \file mailbox.hpp
/// Per-rank message queue. One mailbox per rank; senders push, the owning
/// rank pops by (source, tag). Matching is deterministic: among messages
/// with the same (source, tag), FIFO order is preserved (MPI
/// non-overtaking rule). A pop may carry a wall-clock deadline — the hang
/// detector behind crashed-peer recovery (fault::DeadlineError).

namespace ardbt::mpsim {

/// Thrown inside ranks when a receive can never complete because the
/// awaited peer died. Failure propagates along data-flow edges only: a
/// rank keeps computing (and sending) until it blocks on a message that
/// will never arrive, so the set of sends each rank performs in a failed
/// run — and with it every one-shot FaultPlan ordinal consumed — is a
/// pure function of the program, not of thread scheduling.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("mpsim run aborted by a failing rank") {}
};

/// A delivered message. `available_vtime` is the virtual instant at which
/// the payload is fully visible to the receiver (alpha-beta model).
struct Message {
  int source = -1;
  int tag = -1;
  std::vector<std::byte> payload;
  double available_vtime = 0.0;
  /// Tracer-assigned per-(sender, destination) sequence number so the
  /// receiver's wait/recv events can name the exact send that produced
  /// them (obs::TraceEvent::seq). 0 when tracing is off.
  std::uint64_t trace_seq = 0;
};

/// MPMC-push / single-consumer-pop queue with (source, tag) matching.
class Mailbox {
 public:
  /// Enqueue a message (called by sender threads).
  void push(Message msg) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Block until a message from `source` with `tag` is present, then remove
  /// and return it. Throws AbortedError only once `source_dead` is set AND
  /// no matching message is queued — a dead peer's pre-death sends are
  /// still delivered, so how far the receiver progresses is data-flow
  /// deterministic (never a race against the abort). Also throws
  /// fault::DeadlineError once `timeout_wall` seconds (0 = never) elapse
  /// without a match — the hang backstop for wedged (not crashed) peers.
  Message pop(int source, int tag, const std::atomic<bool>& source_dead,
              double timeout_wall = 0.0) {
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock lock(mutex_);
    for (;;) {
      // Read the flag before scanning: the dying rank's sends
      // happen-before its release-store, so dead==true guarantees the
      // scan below observes every message it ever pushed.
      const bool dead = source_dead.load(std::memory_order_acquire);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->source == source && it->tag == tag) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      if (dead) throw AbortedError();
      if (timeout_wall > 0.0) {
        const double waited = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        if (waited > timeout_wall) throw fault::DeadlineError(source, tag, waited);
      }
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  /// Non-blocking progress probe on the *virtual* clock: block (wall) only
  /// until a message from (source, tag) is physically queued, then report
  /// whether its FIFO-front match is already visible at virtual instant
  /// `cutoff` (available_vtime <= cutoff) WITHOUT consuming it. The result
  /// depends only on virtual times, so under ChargedFlops timing it is a
  /// deterministic function of the program — schedulers can use it to pick
  /// which of several in-flight scans to advance first. A dead source with
  /// nothing queued reports true so the caller's next blocking pop observes
  /// the death through the normal AbortedError path.
  bool peek_available(int source, int tag, double cutoff,
                      const std::atomic<bool>& source_dead) {
    std::unique_lock lock(mutex_);
    for (;;) {
      const bool dead = source_dead.load(std::memory_order_acquire);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->source == source && it->tag == tag) return it->available_vtime <= cutoff;
      }
      if (dead) return true;
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  /// Wake any blocked pop so it can observe a peer death.
  void interrupt() { cv_.notify_all(); }

  /// Number of queued (unreceived) messages; for tests.
  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace ardbt::mpsim
