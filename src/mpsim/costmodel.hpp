#pragma once

#include <cstdint>
#include <string>

/// \file costmodel.hpp
/// Alpha-beta communication cost model used by the virtual-time engine.
/// A message of b bytes sent at sender virtual time t becomes available to
/// the receiver at `t + alpha + beta * b`; the receiver's clock advances to
/// at least that instant. Compute is charged either from measured
/// per-thread CPU time or from explicitly charged flops divided by
/// `flop_rate` (see TimingMode in engine.hpp).

namespace ardbt::mpsim {

/// Machine parameters for the virtual clock.
struct CostModel {
  /// Per-message latency in seconds (includes software overhead).
  double alpha = 5e-6;
  /// Per-byte transfer time in seconds (inverse bandwidth).
  double beta = 1e-9;
  /// Flop rate in flop/s used by TimingMode::ChargedFlops.
  double flop_rate = 2e9;

  /// Human-readable profile name for reports.
  std::string name = "commodity-cluster-2014";

  /// Modeled time for one message of `bytes` bytes.
  double message_time(std::uint64_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }

  /// A profile resembling the interconnects of IPDPS-2014-era clusters
  /// (QDR InfiniBand-ish: ~2 us latency, ~3 GB/s effective bandwidth).
  static CostModel cluster2014() {
    return CostModel{.alpha = 2e-6, .beta = 1.0 / 3e9, .flop_rate = 5e9, .name = "qdr-ib-2014"};
  }

  /// A deliberately slow-network profile for sensitivity studies.
  static CostModel slow_ethernet() {
    return CostModel{.alpha = 5e-5, .beta = 1.0 / 1e8, .flop_rate = 5e9, .name = "gige"};
  }

  /// Zero-cost communication (isolates compute scaling).
  static CostModel free_comm() {
    return CostModel{.alpha = 0.0, .beta = 0.0, .flop_rate = 5e9, .name = "free-comm"};
  }
};

}  // namespace ardbt::mpsim
