#pragma once

#include <functional>
#include <vector>

#include "src/fault/plan.hpp"
#include "src/fault/status.hpp"
#include "src/mpsim/comm.hpp"
#include "src/mpsim/costmodel.hpp"
#include "src/mpsim/stats.hpp"

/// \file engine.hpp
/// Launches P logical ranks as host threads and runs a rank function on
/// each, MPI "SPMD" style. The engine owns all shared state; ranks only
/// see their Comm endpoint. If any rank throws it is marked dead; peers
/// keep running until they block on a receive from a dead rank (data-flow
/// failure propagation — deterministic under any thread schedule), those
/// wake with AbortedError and die in turn, all threads are joined, and the
/// lowest-numbered rank's root-cause exception is rethrown to the caller.

namespace ardbt::mpsim {

/// Configuration of one run.
struct EngineOptions {
  CostModel cost{};
  TimingMode timing = TimingMode::MeasuredCpu;
  /// Optional per-rank event tracer (not owned; must outlive the run).
  /// Null — or a tracer with enabled() == false — records nothing and
  /// keeps the hot path at a single pointer test per event.
  obs::Tracer* tracer = nullptr;
  /// Optional always-on flight recorder (not owned; must outlive the
  /// run). Null — or a disabled recorder — installs null channels, so
  /// every tap stays one pointer test and virtual times are untouched.
  obs::live::FlightRecorder* recorder = nullptr;
  /// Intra-rank worker threads: each rank gets a par::Pool of this many
  /// lanes (1 = serial, no pool). Pool workers split RHS-panel kernels;
  /// charged flops and the virtual clock are unaffected, so ChargedFlops
  /// results are bit-identical for any value.
  int threads_per_rank = 1;
  /// Starting value of every rank's virtual clock. Lets a caller chain
  /// several runs (factor, then solves) into one seamless timeline.
  double vtime_origin = 0.0;
  /// Deterministic fault schedule (not owned; must outlive the run). Null
  /// or empty keeps the fault-free hot path: no wire framing, no
  /// checksums, identical byte streams and virtual times.
  fault::FaultPlan* fault_plan = nullptr;
  /// A receive whose virtual wait exceeds this is counted as a deadline
  /// miss (detection of delayed/straggling peers). 0 = off.
  double virtual_deadline = 0.0;
  /// Wall-clock seconds a blocked receive may wait before DeadlineError
  /// (hang detector for crashed peers). 0 = wait forever.
  double recv_timeout_wall = 0.0;
  /// What solve drivers layered on this engine do on breakdown or a
  /// recoverable fault; the engine itself only transports the setting.
  fault::BreakdownPolicy on_breakdown = fault::BreakdownPolicy::kFailFast;
  /// How often a driver may re-run after a transient fault (is_transient).
  int max_fault_retries = 2;
};

/// Result of one run.
struct RunReport {
  std::vector<RankStats> ranks;
  /// Wall-clock seconds of the whole run (host time, oversubscription-y).
  double wall_seconds = 0.0;

  /// Modeled parallel runtime: the maximum rank virtual clock.
  double max_virtual_time() const;
  /// Aggregate counters over all ranks (sums; virtual fields are maxima).
  RankStats totals() const;
};

/// The SPMD rank body. Must be thread-safe with respect to its peers; all
/// inter-rank interaction goes through Comm.
using RankFn = std::function<void(Comm&)>;

/// Run `fn` on `nranks` logical ranks and collect per-rank statistics.
/// Blocks until all ranks finish. Rethrows the first rank exception.
RunReport run(int nranks, const RankFn& fn, const EngineOptions& options = {});

}  // namespace ardbt::mpsim
