#include "src/mpsim/engine.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ardbt::mpsim {

double RunReport::max_virtual_time() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.virtual_time);
  return m;
}

RankStats RunReport::totals() const {
  RankStats t;
  for (const auto& r : ranks) t.accumulate(r);
  return t;
}

RunReport run(int nranks, const RankFn& fn, const EngineOptions& options) {
  if (nranks <= 0) throw std::invalid_argument("mpsim::run: nranks must be positive");

  World world(nranks, options.cost, options.timing);
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(nranks));

  // Size the per-rank event buffers before threads start; a disabled
  // tracer is equivalent to none.
  obs::Tracer* tracer =
      (options.tracer != nullptr && options.tracer->enabled()) ? options.tracer : nullptr;
  if (tracer != nullptr) tracer->prepare(nranks);

  std::mutex error_mutex;
  // Root-cause error (anything but AbortedError) takes precedence over the
  // AbortedError cascades it triggers in peer ranks.
  std::exception_ptr first_error;
  std::exception_ptr first_abort;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      if (tracer != nullptr) comm.set_trace(&tracer->rank(r));
      try {
        fn(comm);
        comm.sync_compute();  // fold trailing compute into the clock
      } catch (const AbortedError&) {
        std::lock_guard lock(error_mutex);
        if (!first_abort) first_abort = std::current_exception();
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.aborted.store(true, std::memory_order_relaxed);
        for (auto& mb : world.mailboxes) mb.interrupt();
      }
      RankStats s = comm.stats();
      s.virtual_time = comm.vtime();
      report.ranks[static_cast<std::size_t>(r)] = s;
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  if (first_error) std::rethrow_exception(first_error);
  if (first_abort) std::rethrow_exception(first_abort);
  return report;
}

}  // namespace ardbt::mpsim
