#include "src/mpsim/engine.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/par/pool.hpp"

namespace ardbt::mpsim {

double RunReport::max_virtual_time() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.virtual_time);
  return m;
}

RankStats RunReport::totals() const {
  RankStats t;
  for (const auto& r : ranks) t.accumulate(r);
  return t;
}

RunReport run(int nranks, const RankFn& fn, const EngineOptions& options) {
  if (nranks <= 0) throw std::invalid_argument("mpsim::run: nranks must be positive");
  if (options.threads_per_rank < 1)
    throw std::invalid_argument("mpsim::run: threads_per_rank must be >= 1");

  World world(nranks, options.cost, options.timing, options.vtime_origin);
  // An empty plan is equivalent to none: the per-message pointer test stays
  // null and no wire framing is added.
  if (options.fault_plan != nullptr && !options.fault_plan->empty()) {
    options.fault_plan->prepare(nranks);
    world.plan = options.fault_plan;
  }
  world.virtual_deadline = options.virtual_deadline;
  world.recv_timeout_wall = options.recv_timeout_wall;
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(nranks));

  // Size the per-rank event buffers before threads start; a disabled
  // tracer is equivalent to none.
  obs::Tracer* tracer =
      (options.tracer != nullptr && options.tracer->enabled()) ? options.tracer : nullptr;
  const int pool_threads = options.threads_per_rank;
  if (tracer != nullptr) {
    tracer->prepare(nranks);
    // Worker lanes only exist when the hooks are compiled in — with the
    // obs kill switch a --trace run stays metadata-only, one track/rank.
    if (pool_threads > 1 && obs::kTraceCompiledIn) {
      tracer->prepare_workers(nranks, pool_threads);
    }
  }

  // Size the flight-recorder rank channels before threads start; a
  // disabled recorder hands out null channels (channel() returns null).
  obs::live::FlightRecorder* recorder =
      (options.recorder != nullptr && options.recorder->enabled()) ? options.recorder : nullptr;
  if (recorder != nullptr) recorder->prepare(nranks);

  // Per-rank error slots (no shared mutable state, no lock): the reported
  // error is the lowest-numbered rank's root cause — deterministic however
  // the threads were scheduled. Root causes (anything but AbortedError)
  // take precedence over the AbortedError cascades they trigger in peers.
  std::vector<std::exception_ptr> rank_error(static_cast<std::size_t>(nranks));
  std::vector<char> rank_root_cause(static_cast<std::size_t>(nranks), 0);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      if (tracer != nullptr) comm.set_trace(&tracer->rank(r));
      if (recorder != nullptr) comm.set_recorder(recorder->channel(r));
      // Each rank owns its pool for the duration of the run; worker-lane
      // spans are anchored on the rank's virtual clock via the Comm thunk.
      std::unique_ptr<par::Pool> pool;
      if (pool_threads > 1) {
        pool = std::make_unique<par::Pool>(pool_threads);
        if (tracer != nullptr && obs::kTraceCompiledIn) {
          std::vector<obs::RankTrace*> lanes;
          lanes.reserve(static_cast<std::size_t>(pool_threads));
          for (int w = 0; w < pool_threads; ++w) lanes.push_back(&tracer->worker(r, w));
          pool->set_trace(std::move(lanes), &Comm::now_sample_thunk, &comm);
        }
        comm.set_pool(pool.get());
      }
      try {
        fn(comm);
        comm.sync_compute();  // fold trailing compute into the clock
      } catch (const AbortedError&) {
        rank_error[static_cast<std::size_t>(r)] = std::current_exception();
        // This rank died of a dead peer; mark it dead too so failure
        // cascades along data-flow chains (a rank waiting on *us* must
        // not hang). Release-store after our last send (see Mailbox::pop).
        world.dead[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
        for (auto& mb : world.mailboxes) mb.interrupt();
      } catch (...) {
        rank_error[static_cast<std::size_t>(r)] = std::current_exception();
        rank_root_cause[static_cast<std::size_t>(r)] = 1;
        world.dead[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
        for (auto& mb : world.mailboxes) mb.interrupt();
      }
      RankStats s = comm.stats();
      s.virtual_time = comm.vtime();
      report.ranks[static_cast<std::size_t>(r)] = s;
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  for (int r = 0; r < nranks; ++r) {
    if (rank_root_cause[static_cast<std::size_t>(r)]) {
      std::rethrow_exception(rank_error[static_cast<std::size_t>(r)]);
    }
  }
  for (int r = 0; r < nranks; ++r) {
    if (rank_error[static_cast<std::size_t>(r)]) {
      std::rethrow_exception(rank_error[static_cast<std::size_t>(r)]);
    }
  }
  return report;
}

}  // namespace ardbt::mpsim
