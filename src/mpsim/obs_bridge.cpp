#include "src/mpsim/obs_bridge.hpp"

#include <string>

namespace ardbt::mpsim {

obs::Json to_json(const RankStats& stats) {
  obs::Json j = obs::Json::object();
  j.set("msgs_sent", stats.msgs_sent);
  j.set("bytes_sent", stats.bytes_sent);
  j.set("msgs_received", stats.msgs_received);
  j.set("bytes_received", stats.bytes_received);
  j.set("flops_charged", stats.flops_charged);
  j.set("cpu_seconds", stats.cpu_seconds);
  j.set("virtual_time_s", stats.virtual_time);
  j.set("virtual_wait_s", stats.virtual_wait);
  j.set("wait_fraction", stats.wait_fraction());
  j.set("faults_injected", stats.faults_injected);
  j.set("faults_detected", stats.faults_detected);
  j.set("deadline_misses", stats.deadline_misses);
  return j;
}

obs::Json to_json(const RunReport& report) {
  obs::Json j = obs::Json::object();
  j.set("wall_s", report.wall_seconds);
  j.set("max_virtual_time_s", report.max_virtual_time());
  j.set("totals", to_json(report.totals()));
  obs::Json ranks = obs::Json::array();
  for (const RankStats& r : report.ranks) ranks.push(to_json(r));
  j.set("ranks", std::move(ranks));
  return j;
}

void export_metrics(const RunReport& report, obs::MetricsRegistry& registry) {
  const RankStats totals = report.totals();
  registry.counter("mpsim.msgs_sent").add(totals.msgs_sent);
  registry.counter("mpsim.bytes_sent").add(totals.bytes_sent);
  registry.counter("mpsim.msgs_received").add(totals.msgs_received);
  registry.counter("mpsim.bytes_received").add(totals.bytes_received);
  registry.counter("mpsim.flops_charged").add(totals.flops_charged);
  registry.counter("mpsim.cpu_seconds").add(totals.cpu_seconds);
  registry.counter("mpsim.faults_injected").add(totals.faults_injected);
  registry.counter("mpsim.faults_detected").add(totals.faults_detected);
  registry.counter("mpsim.deadline_misses").add(totals.deadline_misses);
  registry.gauge("mpsim.max_virtual_time_s").set(report.max_virtual_time());
  registry.gauge("mpsim.wall_s").set(report.wall_seconds);
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const RankStats& s = report.ranks[r];
    const std::string prefix = "mpsim.rank." + std::to_string(r) + ".";
    registry.gauge(prefix + "virtual_time_s").set(s.virtual_time);
    registry.gauge(prefix + "virtual_wait_s").set(s.virtual_wait);
    registry.gauge(prefix + "wait_fraction").set(s.wait_fraction());
  }
}

void export_metrics(const obs::Tracer& tracer, obs::MetricsRegistry& registry) {
  obs::Histogram& sizes = registry.histogram("mpsim.message_size_bytes");
  std::uint64_t recorded = 0, dropped = 0;
  for (int r = 0; r < tracer.nranks(); ++r) {
    const obs::RankTrace& rt = tracer.rank(r);
    sizes.merge_log2(rt.message_size_log2());
    recorded += rt.total_recorded();
    dropped += rt.dropped();
    for (const auto& [phase, bytes] : rt.bytes_by_phase()) {
      registry.counter("trace.bytes_by_phase." + phase).add(bytes);
    }
    for (const obs::TraceEvent& e : rt.events()) {
      if (e.kind == obs::SpanKind::kPhase) {
        registry.latency(std::string("latency.phase.") + e.name + "_s")
            .observe(e.vtime_end - e.vtime_begin);
      }
    }
  }
  // Pool worker-lane jobs carry wall-anchored times (the virtual clock is
  // frozen inside fork-join regions), so their latencies are real elapsed
  // seconds and vary run to run — keep them out of deterministic
  // snapshots (the CLI --metrics filter does).
  for (int r = 0; r < tracer.nranks(); ++r) {
    for (int w = 0; w < tracer.workers_per_rank(); ++w) {
      for (const obs::TraceEvent& e : tracer.worker(r, w).events()) {
        if (e.kind == obs::SpanKind::kPhase) {
          registry.latency("latency.panel.wall_s").observe(e.wall_end - e.wall_begin);
        }
      }
    }
  }
  registry.counter("trace.events_recorded").add(recorded);
  registry.counter("trace.events_dropped").add(dropped);
  // Point-in-time drop total: a nonzero value means the bounded rings
  // overwrote events and any attribution over this trace is partial
  // (`complete=false`). The CLI surfaces it as a structured warning.
  registry.gauge("trace.dropped_events").set(static_cast<double>(dropped));
}

void export_metrics(const obs::live::FlightRecorder& recorder, obs::MetricsRegistry& registry) {
  registry.gauge("recorder.events_recorded").set(static_cast<double>(recorder.total_recorded()));
  registry.gauge("recorder.events_dropped").set(static_cast<double>(recorder.total_dropped()));
  registry.gauge("recorder.anomalies_noted").set(static_cast<double>(recorder.anomalies_noted()));
  registry.gauge("recorder.max_resident_events")
      .set(static_cast<double>(recorder.max_resident_events()));
}

}  // namespace ardbt::mpsim
