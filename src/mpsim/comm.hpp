#pragma once

#include <cassert>
#include <cstring>
#include <span>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "src/fault/status.hpp"
#include "src/mpsim/costmodel.hpp"
#include "src/mpsim/mailbox.hpp"
#include "src/mpsim/stats.hpp"
#include "src/obs/live/recorder.hpp"
#include "src/obs/trace.hpp"

/// \file comm.hpp
/// Rank-local communication endpoint. Each rank function receives a Comm&
/// giving MPI-like point-to-point primitives plus the virtual clock. Sends
/// are eager (buffered, never block); receives block until a matching
/// message exists. Tags and sources are always explicit; matching is FIFO
/// per (source, tag), mirroring MPI's non-overtaking guarantee.

namespace ardbt::par {
class Pool;
}

namespace ardbt::fault {
class FaultPlan;
}

namespace ardbt::mpsim {

/// How virtual time advances between communication events.
enum class TimingMode {
  /// Charge measured per-thread CPU seconds (CLOCK_THREAD_CPUTIME_ID).
  /// Accurate on oversubscribed hosts because blocked threads accrue none.
  MeasuredCpu,
  /// Charge only explicitly reported flops at CostModel::flop_rate.
  /// Fully deterministic; used for model-mode scaling studies and tests.
  ChargedFlops,
};

class Engine;

/// Shared state of one engine run. Internal to mpsim.
struct World {
  int nranks = 0;
  CostModel cost;
  TimingMode timing = TimingMode::MeasuredCpu;
  double vtime_origin = 0.0;  ///< starting virtual time of every rank clock
  std::vector<Mailbox> mailboxes;
  /// Per-rank death flags (release-stored by the engine when a rank thread
  /// throws). Receives consult the flag of the rank they await, so failure
  /// propagates along data-flow edges deterministically instead of through
  /// a global abort racing against healthy ranks' progress.
  std::vector<std::atomic<bool>> dead;
  /// Installed fault-injection plan, or null for the common fault-free
  /// path: the only per-message overhead without a plan is this pointer
  /// test (mirrors the tracer's null-hook design).
  fault::FaultPlan* plan = nullptr;
  /// Virtual-wait budget per receive; a wait beyond it is counted as a
  /// deadline miss (detection signal for delayed/straggling peers). 0 = off.
  double virtual_deadline = 0.0;
  /// Wall-clock ceiling for a blocking receive before DeadlineError — the
  /// hang detector for crashed peers. 0 = wait forever.
  double recv_timeout_wall = 0.0;

  explicit World(int n, CostModel c, TimingMode t, double origin = 0.0)
      : nranks(n), cost(c), timing(t), vtime_origin(origin),
        mailboxes(static_cast<std::size_t>(n)), dead(static_cast<std::size_t>(n)) {}
};

/// Per-rank endpoint handed to the rank function by Engine::run.
class Comm {
 public:
  Comm(World& world, int rank) : world_(&world), rank_(rank), vtime_(world.vtime_origin) {
    reset_cpu_baseline();
  }

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int size() const { return world_->nranks; }
  const CostModel& cost() const { return world_->cost; }

  /// Untyped eager send of a byte payload.
  void send_bytes(int dst, int tag, std::span<const std::byte> payload);

  /// Blocking receive of the next message from (src, tag).
  std::vector<std::byte> recv_bytes(int src, int tag);

  /// Non-blocking receive progress on the virtual clock: true when the
  /// next (src, tag) message is already visible at this rank's current
  /// virtual time. Never consumes the message and never advances the
  /// clock; may block wall-clock until the sender has physically pushed
  /// (so under ChargedFlops the answer is a deterministic function of the
  /// program, not of thread scheduling). Pipelined schedulers use it to
  /// decide which in-flight scan round to finish first.
  bool recv_ready(int src, int tag);

  /// ---- message-tag registry ------------------------------------------
  /// Every in-flight scan must own a distinct tag per rank: the mailbox
  /// matches FIFO per (source, tag), so two concurrent users of one tag
  /// silently cross-match each other's payloads. CachedScan used to carry
  /// that rule as a comment; the registry makes it a typed runtime error.
  /// Dynamic tags live at kDynamicTagBase and above, below the collective
  /// range (1 << 24), leaving the small hand-picked tags (ard_tags, test
  /// tags) free.
  static constexpr int kDynamicTagBase = 1 << 20;

  /// Claim `tag` on this rank until release_tag. Throws
  /// fault::TagCollisionError if it is already held — the loud replacement
  /// for silent message cross-matching. Prefer the RAII TagGuard.
  void register_tag(int tag) {
    if (!tags_in_use_.insert(tag).second) throw fault::TagCollisionError(rank_, tag);
  }
  void release_tag(int tag) { tags_in_use_.erase(tag); }

  /// Lowest free dynamic tag (>= kDynamicTagBase) on this rank. Picks
  /// without claiming: the caller registers it (typically via the TagGuard
  /// inside CachedScan's steppers), so two users of the same pick collide
  /// loudly instead of racing. Because the solve schedule is
  /// SPMD-symmetric, every rank's allocator hands out the same sequence,
  /// which is what makes a picked tag valid as a cross-rank message tag.
  int next_tag() const {
    int t = kDynamicTagBase;
    while (tags_in_use_.contains(t)) ++t;
    return t;
  }

  /// Typed send of a span of trivially copyable elements.
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, std::as_bytes(data));
  }

  /// Typed send of one value.
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, std::span<const T>(&v, 1));
  }

  /// Typed receive into a caller-provided span. A size mismatch (protocol
  /// bug or corrupted stream) throws fault::MessageSizeError rather than
  /// silently truncating under NDEBUG.
  template <typename T>
  void recv_into(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv_bytes(src, tag);
    if (raw.size() != out.size_bytes()) {
      throw fault::MessageSizeError(src, tag, static_cast<std::uint64_t>(out.size_bytes()),
                                    static_cast<std::uint64_t>(raw.size()));
    }
    std::memcpy(out.data(), raw.data(), raw.size());
  }

  /// Typed receive of one value.
  template <typename T>
  T recv_value(int src, int tag) {
    T v{};
    recv_into(src, tag, std::span<T>(&v, 1));
    return v;
  }

  /// Symmetric exchange with one peer: eager send, then receive. Safe for
  /// pairwise exchange patterns because sends never block.
  template <typename T>
  void sendrecv(int peer, int tag, std::span<const T> out, std::span<T> in) {
    send(peer, tag, out);
    recv_into(peer, tag, in);
  }

  /// Report `f` floating-point operations performed since the last event.
  /// Always counted in stats; advances the clock in ChargedFlops mode.
  void charge_flops(double f);

  /// Current virtual time in seconds.
  double vtime() const { return vtime_; }

  /// Per-rank counters (final values collected by the engine).
  const RankStats& stats() const { return stats_; }

  /// Fold measured CPU time since the last event into the clock. Called
  /// automatically by send/recv; exposed so timing sections can close
  /// before reading vtime().
  void sync_compute();

  /// Install this rank's event buffer (engine-called; null = no tracing).
  void set_trace(obs::RankTrace* trace) { trace_ = trace; }
  obs::RankTrace* trace() const { return trace_; }

  /// Install this rank's flight-recorder channel (engine-called; null =
  /// no recording). Taps live only on anomaly paths — fault marks and
  /// deadline misses — so the fault-free hot path cost is unchanged and
  /// the clock is never touched.
  void set_recorder(obs::live::RecorderChannel* recorder) { recorder_ = recorder; }
  obs::live::RecorderChannel* recorder() const { return recorder_; }

  /// Install this rank's intra-rank thread pool (engine-called when
  /// EngineOptions::threads_per_rank > 1; null = serial kernels). Rank
  /// functions hand this to pool-aware kernels (la::gemm, Thomas solves);
  /// it never changes virtual-time accounting — flop charges stay on the
  /// rank thread.
  void set_pool(par::Pool* pool) { pool_ = pool; }
  par::Pool* pool() const { return pool_; }

  /// Current {vtime, wall} sample (folds pending measured compute first).
  /// Used by the engine to anchor pool worker-lane spans on this rank's
  /// virtual clock; requires tracing to be installed.
  obs::TimeSample now_sample() { return trace_now(); }
  static obs::TimeSample now_sample_thunk(void* ctx) {
    return static_cast<Comm*>(ctx)->trace_now();
  }

  /// Open an RAII phase span on this rank's trace (see ARDBT_TRACE_SPAN).
  /// Returns an inactive scope when tracing is off; boundaries fold
  /// pending measured compute so span virtual times are exact.
  obs::SpanScope trace_scope(obs::SpanKind kind, const char* name) {
    if constexpr (!obs::kTraceCompiledIn) return {};
    if (trace_ == nullptr) return {};
    sync_compute();
    return obs::SpanScope(trace_, kind, name, &Comm::trace_now_thunk, this);
  }

 private:
  void reset_cpu_baseline();
  double cpu_now() const;

  obs::TimeSample trace_now() {
    sync_compute();
    return {vtime_, trace_->wall_now()};
  }
  static obs::TimeSample trace_now_thunk(void* ctx) {
    return static_cast<Comm*>(ctx)->trace_now();
  }

  World* world_;
  int rank_;
  double vtime_ = 0.0;
  double cpu_baseline_ = 0.0;
  RankStats stats_;
  obs::RankTrace* trace_ = nullptr;
  obs::live::RecorderChannel* recorder_ = nullptr;
  par::Pool* pool_ = nullptr;
  /// Per-source sets of wire sequence numbers already delivered; used to
  /// drop injected duplicates. Receives with different tags may interleave
  /// out of send order, so a last-seq comparison would misfire — membership
  /// is the only correct test. Allocated only when a plan is installed.
  std::vector<std::unordered_set<std::uint64_t>> seen_seqs_;
  /// Rank-local set of registered (in-flight) message tags.
  std::unordered_set<int> tags_in_use_;
};

/// RAII claim on a message tag (see Comm::register_tag). Movable so scan
/// steppers can own their tag for exactly the in-flight window.
class TagGuard {
 public:
  TagGuard() = default;
  TagGuard(Comm& comm, int tag) : comm_(&comm), tag_(tag) { comm.register_tag(tag); }
  TagGuard(TagGuard&& other) noexcept : comm_(other.comm_), tag_(other.tag_) {
    other.comm_ = nullptr;
  }
  TagGuard& operator=(TagGuard&& other) noexcept {
    if (this != &other) {
      release();
      comm_ = other.comm_;
      tag_ = other.tag_;
      other.comm_ = nullptr;
    }
    return *this;
  }
  TagGuard(const TagGuard&) = delete;
  TagGuard& operator=(const TagGuard&) = delete;
  ~TagGuard() { release(); }

  void release() {
    if (comm_ != nullptr) {
      comm_->release_tag(tag_);
      comm_ = nullptr;
    }
  }

 private:
  Comm* comm_ = nullptr;
  int tag_ = -1;
};

}  // namespace ardbt::mpsim
