#include "src/mpsim/comm.hpp"

#include <ctime>

#include "src/fault/plan.hpp"

namespace ardbt::mpsim {

namespace {

/// Wire framing prepended to every payload while a FaultPlan is installed:
/// a per-(sender, receiver) sequence number for duplicate detection and an
/// FNV-1a checksum of the (pre-corruption) data for bit-flip detection.
/// Fault-free runs carry no header, so message sizes and virtual times are
/// bit-identical to a build without the fault layer.
struct WireHeader {
  std::uint64_t seq = 0;
  std::uint64_t crc = 0;
};
constexpr std::size_t kHeaderBytes = sizeof(WireHeader);

}  // namespace

double Comm::cpu_now() const {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void Comm::reset_cpu_baseline() { cpu_baseline_ = cpu_now(); }

void Comm::sync_compute() {
  const double now = cpu_now();
  const double delta = now - cpu_baseline_;
  cpu_baseline_ = now;
  if (delta <= 0.0) return;
  stats_.cpu_seconds += delta;
  if (world_->timing == TimingMode::MeasuredCpu) {
    const double v0 = vtime_;
    vtime_ += delta;
    if constexpr (obs::kTraceCompiledIn) {
      if (trace_ != nullptr) {
        const double wall = trace_->wall_now();
        trace_->add_compute({v0, wall - delta}, {vtime_, wall}, 0.0);
      }
    }
  }
}

void Comm::charge_flops(double f) {
  stats_.flops_charged += f;
  if (world_->timing == TimingMode::ChargedFlops) {
    const double v0 = vtime_;
    vtime_ += f / world_->cost.flop_rate;
    if constexpr (obs::kTraceCompiledIn) {
      if (trace_ != nullptr) {
        const double wall = trace_->wall_now();
        trace_->add_compute({v0, wall}, {vtime_, wall}, f);
      }
    }
  }
}

void Comm::send_bytes(int dst, int tag, std::span<const std::byte> payload) {
  assert(dst >= 0 && dst < size());
  sync_compute();
  const auto nbytes = static_cast<std::uint64_t>(payload.size());
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  double extra_delay = 0.0;
  bool duplicate = false;
  if (world_->plan == nullptr) {
    msg.payload.assign(payload.begin(), payload.end());
  } else {
    const fault::SendActions actions = world_->plan->on_send(rank_, dst, tag, vtime_);
    stats_.faults_injected += static_cast<std::uint64_t>(actions.injected_count);
    if (actions.crash) {
      // Fail-stop before anything reaches the wire: receivers observe the
      // rank's death flag and abort at their data-flow-determined recv.
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          trace_->instant(obs::SpanKind::kMark, "fault.crash", {vtime_, trace_->wall_now()}, dst, 0);
        }
      }
      if (recorder_ != nullptr) recorder_->record_mark("fault.crash", vtime_, dst);
      throw fault::InjectedCrashError(rank_);
    }
    if (actions.straggle_seconds > 0.0) {
      // Slow-node model: the rank loses virtual time before the send.
      const double s0 = vtime_;
      vtime_ += actions.straggle_seconds;
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          const double wall = trace_->wall_now();
          trace_->complete(obs::SpanKind::kWait, "fault.straggle", {s0, wall}, {vtime_, wall}, dst, 0);
        }
      }
      if (recorder_ != nullptr) {
        recorder_->record_span("fault.straggle", vtime_, actions.straggle_seconds);
      }
    }
    WireHeader header;
    header.seq = world_->plan->next_seq(rank_, dst);
    header.crc = fault::checksum(payload);
    msg.payload.resize(kHeaderBytes + payload.size());
    std::memcpy(msg.payload.data(), &header, kHeaderBytes);
    if (!payload.empty()) {
      std::memcpy(msg.payload.data() + kHeaderBytes, payload.data(), payload.size());
    }
    if (actions.flip && !payload.empty()) {
      // Corrupt after the checksum is computed so the receiver can detect it.
      const std::uint64_t bit = actions.flip_bit % (static_cast<std::uint64_t>(payload.size()) * 8);
      msg.payload[kHeaderBytes + static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::byte>(1u << (bit % 8));
    }
    extra_delay = actions.delay_seconds;
    duplicate = actions.duplicate;
  }
  // Alpha-beta model: the payload is visible to the receiver one latency
  // plus serialization time after the send is issued; the sender itself is
  // busy for the latency term (LogP overhead `o`).
  msg.available_vtime = vtime_ + world_->cost.message_time(nbytes) + extra_delay;
  const double v0 = vtime_;
  vtime_ += world_->cost.alpha;
  stats_.msgs_sent += 1;
  stats_.bytes_sent += nbytes;
  if constexpr (obs::kTraceCompiledIn) {
    if (trace_ != nullptr) {
      msg.trace_seq = trace_->next_send_seq(dst);
      const double wall = trace_->wall_now();
      trace_->complete(obs::SpanKind::kSend, "send", {v0, wall}, {vtime_, wall}, dst, nbytes,
                       msg.trace_seq);
      trace_->tally_sent(nbytes);
    }
  }
  Mailbox& box = world_->mailboxes[static_cast<std::size_t>(dst)];
  if (duplicate) box.push(msg);  // same seq twice; receiver drops the second copy
  box.push(std::move(msg));
  // Copying into the message counted as compute; restart the baseline so
  // serialization cost is attributed to this rank but not double-charged.
  reset_cpu_baseline();
}

bool Comm::recv_ready(int src, int tag) {
  assert(src >= 0 && src < size());
  // Fold pending measured compute first so the cutoff is this rank's true
  // current virtual instant; the probe itself never advances the clock.
  sync_compute();
  return world_->mailboxes[static_cast<std::size_t>(rank_)].peek_available(
      src, tag, vtime_, world_->dead[static_cast<std::size_t>(src)]);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  assert(src >= 0 && src < size());
  sync_compute();
  fault::FaultPlan* plan = world_->plan;
  for (;;) {
    const double v0 = vtime_;
    Message msg = world_->mailboxes[static_cast<std::size_t>(rank_)].pop(
        src, tag, world_->dead[static_cast<std::size_t>(src)], world_->recv_timeout_wall);
    double waited = 0.0;
    if (msg.available_vtime > vtime_) {
      waited = msg.available_vtime - vtime_;
      stats_.virtual_wait += waited;
      vtime_ = msg.available_vtime;
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          const double wall = trace_->wall_now();
          trace_->complete(obs::SpanKind::kWait, "wait", {v0, wall}, {vtime_, wall}, src,
                           static_cast<std::uint64_t>(msg.payload.size()), msg.trace_seq);
        }
      }
    }
    if (world_->virtual_deadline > 0.0 && waited > world_->virtual_deadline) {
      // The peer was slower than the cost model predicts it should ever be:
      // detection signal for injected delays and stragglers.
      stats_.deadline_misses += 1;
      if (plan != nullptr) {
        plan->record_detected(rank_, fault::FaultKind::kDelay, src, tag, 0, vtime_);
      }
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          trace_->instant(obs::SpanKind::kMark, "fault.deadline_miss",
                          {vtime_, trace_->wall_now()}, src, 0);
        }
      }
      if (recorder_ != nullptr) recorder_->record_mark("fault.deadline_miss", vtime_, waited);
    }
    if (plan == nullptr) {
      stats_.msgs_received += 1;
      stats_.bytes_received += static_cast<std::uint64_t>(msg.payload.size());
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          trace_->instant(obs::SpanKind::kRecv, "recv", {vtime_, trace_->wall_now()}, src,
                          static_cast<std::uint64_t>(msg.payload.size()), msg.trace_seq);
        }
      }
      reset_cpu_baseline();
      return std::move(msg.payload);
    }
    // Fault-aware path: strip and verify the wire header.
    if (msg.payload.size() < kHeaderBytes) {
      throw fault::MessageSizeError(src, tag, static_cast<std::uint64_t>(kHeaderBytes),
                                    static_cast<std::uint64_t>(msg.payload.size()));
    }
    WireHeader header;
    std::memcpy(&header, msg.payload.data(), kHeaderBytes);
    if (seen_seqs_.empty()) seen_seqs_.resize(static_cast<std::size_t>(size()));
    auto& seen = seen_seqs_[static_cast<std::size_t>(src)];
    if (!seen.insert(header.seq).second) {
      // Injected duplicate: drop it and pop the mailbox again.
      stats_.faults_detected += 1;
      plan->record_detected(rank_, fault::FaultKind::kDuplicate, src, tag, header.seq, vtime_);
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          trace_->instant(obs::SpanKind::kMark, "fault.duplicate_dropped",
                          {vtime_, trace_->wall_now()}, src,
                          static_cast<std::uint64_t>(msg.payload.size()));
        }
      }
      if (recorder_ != nullptr) recorder_->record_mark("fault.duplicate_dropped", vtime_, src);
      continue;
    }
    const auto data = std::span<const std::byte>(msg.payload).subspan(kHeaderBytes);
    const std::uint64_t got_crc = fault::checksum(data);
    if (got_crc != header.crc) {
      stats_.faults_detected += 1;
      plan->record_detected(rank_, fault::FaultKind::kBitFlip, src, tag, header.seq, vtime_);
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          trace_->instant(obs::SpanKind::kMark, "fault.corrupt",
                          {vtime_, trace_->wall_now()}, src,
                          static_cast<std::uint64_t>(data.size()));
        }
      }
      if (recorder_ != nullptr) recorder_->record_mark("fault.corrupt", vtime_, src);
      throw fault::MessageCorruptError(src, tag, header.crc, got_crc);
    }
    stats_.msgs_received += 1;
    stats_.bytes_received += static_cast<std::uint64_t>(data.size());
    if constexpr (obs::kTraceCompiledIn) {
      if (trace_ != nullptr) {
        trace_->instant(obs::SpanKind::kRecv, "recv", {vtime_, trace_->wall_now()}, src,
                        static_cast<std::uint64_t>(data.size()), msg.trace_seq);
      }
    }
    reset_cpu_baseline();
    msg.payload.erase(msg.payload.begin(),
                      msg.payload.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes));
    return std::move(msg.payload);
  }
}

}  // namespace ardbt::mpsim
