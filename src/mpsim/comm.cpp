#include "src/mpsim/comm.hpp"

#include <ctime>

namespace ardbt::mpsim {

double Comm::cpu_now() const {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void Comm::reset_cpu_baseline() { cpu_baseline_ = cpu_now(); }

void Comm::sync_compute() {
  const double now = cpu_now();
  const double delta = now - cpu_baseline_;
  cpu_baseline_ = now;
  if (delta <= 0.0) return;
  stats_.cpu_seconds += delta;
  if (world_->timing == TimingMode::MeasuredCpu) {
    const double v0 = vtime_;
    vtime_ += delta;
    if constexpr (obs::kTraceCompiledIn) {
      if (trace_ != nullptr) {
        const double wall = trace_->wall_now();
        trace_->add_compute({v0, wall - delta}, {vtime_, wall}, 0.0);
      }
    }
  }
}

void Comm::charge_flops(double f) {
  stats_.flops_charged += f;
  if (world_->timing == TimingMode::ChargedFlops) {
    const double v0 = vtime_;
    vtime_ += f / world_->cost.flop_rate;
    if constexpr (obs::kTraceCompiledIn) {
      if (trace_ != nullptr) {
        const double wall = trace_->wall_now();
        trace_->add_compute({v0, wall}, {vtime_, wall}, f);
      }
    }
  }
}

void Comm::send_bytes(int dst, int tag, std::span<const std::byte> payload) {
  assert(dst >= 0 && dst < size());
  sync_compute();
  const auto nbytes = static_cast<std::uint64_t>(payload.size());
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(payload.begin(), payload.end());
  // Alpha-beta model: the payload is visible to the receiver one latency
  // plus serialization time after the send is issued; the sender itself is
  // busy for the latency term (LogP overhead `o`).
  msg.available_vtime = vtime_ + world_->cost.message_time(nbytes);
  const double v0 = vtime_;
  vtime_ += world_->cost.alpha;
  stats_.msgs_sent += 1;
  stats_.bytes_sent += nbytes;
  if constexpr (obs::kTraceCompiledIn) {
    if (trace_ != nullptr) {
      const double wall = trace_->wall_now();
      trace_->complete(obs::SpanKind::kSend, "send", {v0, wall}, {vtime_, wall}, dst, nbytes);
      trace_->tally_sent(nbytes);
    }
  }
  world_->mailboxes[static_cast<std::size_t>(dst)].push(std::move(msg));
  // Copying into the message counted as compute; restart the baseline so
  // serialization cost is attributed to this rank but not double-charged.
  reset_cpu_baseline();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  assert(src >= 0 && src < size());
  sync_compute();
  const double v0 = vtime_;
  Message msg = world_->mailboxes[static_cast<std::size_t>(rank_)].pop(src, tag, world_->aborted);
  if (msg.available_vtime > vtime_) {
    stats_.virtual_wait += msg.available_vtime - vtime_;
    vtime_ = msg.available_vtime;
    if constexpr (obs::kTraceCompiledIn) {
      if (trace_ != nullptr) {
        const double wall = trace_->wall_now();
        trace_->complete(obs::SpanKind::kWait, "wait", {v0, wall}, {vtime_, wall}, src,
                         static_cast<std::uint64_t>(msg.payload.size()));
      }
    }
  }
  stats_.msgs_received += 1;
  stats_.bytes_received += static_cast<std::uint64_t>(msg.payload.size());
  if constexpr (obs::kTraceCompiledIn) {
    if (trace_ != nullptr) {
      trace_->instant(obs::SpanKind::kRecv, "recv", {vtime_, trace_->wall_now()}, src,
                      static_cast<std::uint64_t>(msg.payload.size()));
    }
  }
  reset_cpu_baseline();
  return std::move(msg.payload);
}

}  // namespace ardbt::mpsim
