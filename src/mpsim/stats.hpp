#pragma once

#include <cstdint>

/// \file stats.hpp
/// Per-rank counters gathered by the engine after a run.

namespace ardbt::mpsim {

/// Communication/computation counters for one rank. Plain aggregates so
/// they can be reduced/merged trivially.
struct RankStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_received = 0;
  /// Flops explicitly charged via Comm::charge_flops.
  double flops_charged = 0.0;
  /// Thread CPU seconds measured between communication events.
  double cpu_seconds = 0.0;
  /// Final virtual clock (seconds).
  double virtual_time = 0.0;
  /// Virtual seconds spent blocked waiting for messages.
  double virtual_wait = 0.0;
  /// Faults a FaultPlan injected at this rank's sends.
  std::uint64_t faults_injected = 0;
  /// Injected faults this rank detected on receive (duplicates dropped,
  /// corrupted payloads caught).
  std::uint64_t faults_detected = 0;
  /// Receives whose virtual wait exceeded the configured deadline.
  std::uint64_t deadline_misses = 0;

  /// Run-level summary merge: counters and work sum across ranks, the
  /// virtual-clock fields take the maximum (the modeled parallel runtime
  /// is the slowest rank, not the sum of clocks).
  void accumulate(const RankStats& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_received += o.msgs_received;
    bytes_received += o.bytes_received;
    flops_charged += o.flops_charged;
    cpu_seconds += o.cpu_seconds;
    faults_injected += o.faults_injected;
    faults_detected += o.faults_detected;
    deadline_misses += o.deadline_misses;
    virtual_time = virtual_time > o.virtual_time ? virtual_time : o.virtual_time;
    virtual_wait = virtual_wait > o.virtual_wait ? virtual_wait : o.virtual_wait;
  }

  /// Fraction of this rank's virtual time spent blocked on messages.
  double wait_fraction() const { return virtual_time > 0.0 ? virtual_wait / virtual_time : 0.0; }
};

}  // namespace ardbt::mpsim
