#pragma once

#include "src/mpsim/engine.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

/// \file obs_bridge.hpp
/// Projections from the simulator's per-rank counters into the
/// observability layer: RankStats stays the plain lock-free aggregate the
/// hot path updates, and these helpers expose it as JSON documents and
/// registry metrics after a run (the "RankStats is a view" direction —
/// the registry is derived, never written during the run).

namespace ardbt::mpsim {

/// {"msgs_sent": ..., "bytes_sent": ..., ..., "wait_fraction": ...}.
obs::Json to_json(const RankStats& stats);

/// {"wall_s", "max_virtual_time_s", "totals", "ranks": [...]}.
obs::Json to_json(const RunReport& report);

/// Register run counters and per-rank gauges:
///   counters  mpsim.msgs_sent / bytes_sent / msgs_received /
///             bytes_received / flops_charged / cpu_seconds
///   gauges    mpsim.max_virtual_time_s, mpsim.wall_s,
///             mpsim.rank.<r>.virtual_time_s / virtual_wait_s /
///             wait_fraction
void export_metrics(const RunReport& report, obs::MetricsRegistry& registry);

/// Fold a tracer's per-rank tallies into the registry:
///   histogram mpsim.message_size_bytes (log2 buckets)
///   counters  trace.bytes_by_phase.<phase>, trace.events_recorded,
///             trace.events_dropped
///   latency   latency.phase.<name>_s — per-phase span durations on the
///             virtual clock (deterministic under ChargedFlops);
///             latency.panel.wall_s — pool worker-lane job durations on
///             the host wall clock (real time; nondeterministic, present
///             only when a pool ran under tracing)
///   gauge     trace.dropped_events — point-in-time drop total; nonzero
///             means bounded rings overwrote events (attribution partial)
void export_metrics(const obs::Tracer& tracer, obs::MetricsRegistry& registry);

/// Flight-recorder tallies as gauges: recorder.events_recorded /
/// events_dropped / anomalies_noted / max_resident_events.
void export_metrics(const obs::live::FlightRecorder& recorder, obs::MetricsRegistry& registry);

}  // namespace ardbt::mpsim
