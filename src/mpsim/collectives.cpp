#include "src/mpsim/collectives.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ardbt::mpsim {
namespace {

/// Translate a virtual rank (relative to root) back to a real rank.
int from_vrank(int vrank, int root, int size) { return (vrank + root) % size; }

}  // namespace

void barrier(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::byte token{0};
  for (int k = 1; k < p; k <<= 1) {
    const int to = (r + k) % p;
    const int from = (r - k % p + p) % p;
    comm.send_bytes(to, tags::kBarrier, std::span<const std::byte>(&token, 1));
    (void)comm.recv_bytes(from, tags::kBarrier);
  }
}

void bcast(Comm& comm, std::span<double> data, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  assert(root >= 0 && root < p);
  const int vr = (r - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      comm.recv_into(from_vrank(vr - mask, root, p), tags::kBcast, data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      comm.send(from_vrank(vr + mask, root, p), tags::kBcast, std::span<const double>(data));
    }
    mask >>= 1;
  }
}

void reduce_sum(Comm& comm, std::span<double> inout, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  assert(root >= 0 && root < p);
  const int vr = (r - root + p) % p;
  std::vector<double> buf(inout.size());

  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int vsrc = vr | mask;
      if (vsrc < p) {
        comm.recv_into(from_vrank(vsrc, root, p), tags::kReduce, std::span<double>(buf));
        for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += buf[i];
      }
    } else {
      comm.send(from_vrank(vr - mask, root, p), tags::kReduce, std::span<const double>(inout));
      break;
    }
    mask <<= 1;
  }
}

void allreduce_sum(Comm& comm, std::span<double> inout) {
  reduce_sum(comm, inout, /*root=*/0);
  bcast(comm, inout, /*root=*/0);
}

void allreduce_max(Comm& comm, std::span<double> inout) {
  // Same binomial structure as reduce_sum with max combine.
  const int p = comm.size();
  const int vr = comm.rank();
  std::vector<double> buf(inout.size());
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int src = vr | mask;
      if (src < p) {
        comm.recv_into(src, tags::kReduce, std::span<double>(buf));
        for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = std::max(inout[i], buf[i]);
      }
    } else {
      comm.send(vr - mask, tags::kReduce, std::span<const double>(inout));
      break;
    }
    mask <<= 1;
  }
  bcast(comm, inout, /*root=*/0);
}

void gather(Comm& comm, std::span<const double> send, std::span<double> out, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n = send.size();
  if (r == root) {
    assert(out.size() == n * static_cast<std::size_t>(p));
    std::copy(send.begin(), send.end(), out.begin() + static_cast<std::ptrdiff_t>(n) * r);
    for (int src = 0; src < p; ++src) {
      if (src == root) continue;
      comm.recv_into(src, tags::kGather, out.subspan(n * static_cast<std::size_t>(src), n));
    }
  } else {
    comm.send(root, tags::kGather, send);
  }
}

void gatherv(Comm& comm, std::span<const double> send, std::span<const std::int64_t> counts,
             std::span<double> out, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  if (r == root) {
    assert(static_cast<int>(counts.size()) == p);
    std::size_t offset = 0;
    for (int src = 0; src < p; ++src) {
      const auto cnt = static_cast<std::size_t>(counts[static_cast<std::size_t>(src)]);
      assert(offset + cnt <= out.size());
      auto dst = out.subspan(offset, cnt);
      if (src == root) {
        assert(send.size() == cnt);
        std::copy(send.begin(), send.end(), dst.begin());
      } else {
        comm.recv_into(src, tags::kGather, dst);
      }
      offset += cnt;
    }
  } else {
    comm.send(root, tags::kGather, send);
  }
}

void allgather(Comm& comm, std::span<const double> send, std::span<double> out) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n = send.size();
  assert(out.size() == n * static_cast<std::size_t>(p));
  std::copy(send.begin(), send.end(), out.begin() + static_cast<std::ptrdiff_t>(n) * r);
  // Ring: at step s, pass along the block that originated s hops upstream.
  const int next = (r + 1) % p;
  const int prev = (r - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (r - s + p) % p;
    const int recv_block = (r - s - 1 + p) % p;
    comm.send(next, tags::kAllgather,
              std::span<const double>(out.subspan(n * static_cast<std::size_t>(send_block), n)));
    comm.recv_into(prev, tags::kAllgather,
                   out.subspan(n * static_cast<std::size_t>(recv_block), n));
  }
}

std::vector<ScanStep> exscan_schedule(int rank, int size) {
  assert(rank >= 0 && rank < size);
  std::vector<ScanStep> steps;
  for (int mask = 1; mask < size; mask <<= 1) {
    const int partner = rank ^ mask;
    if (partner < size) {
      steps.push_back(ScanStep{.partner = partner, .partner_is_lower = partner < rank});
    }
  }
  return steps;
}

std::vector<double> exscan_sum(Comm& comm, std::span<const double> local) {
  using Vec = std::vector<double>;
  Vec mine(local.begin(), local.end());
  auto op = [](const Vec& a, const Vec& b) {
    Vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
  };
  auto ser = [](const Vec& v) {
    std::vector<std::byte> bytes(v.size() * sizeof(double));
    std::memcpy(bytes.data(), v.data(), bytes.size());
    return bytes;
  };
  auto des = [](std::span<const std::byte> bytes) {
    Vec v(bytes.size() / sizeof(double));
    std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  };
  auto result = exscan(comm, std::move(mine), op, ser, des);
  return result ? *result : Vec(local.size(), 0.0);
}

std::vector<double> scan_sum(Comm& comm, std::span<const double> local) {
  std::vector<double> incl = exscan_sum(comm, local);
  for (std::size_t i = 0; i < incl.size(); ++i) incl[i] += local[i];
  return incl;
}

}  // namespace ardbt::mpsim
