#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/mpsim/comm.hpp"

/// \file collectives.hpp
/// MPI-style collectives built from point-to-point messages with the
/// classic tree/hypercube algorithms, so the virtual-time engine charges
/// the textbook O(log P) / O(P) costs:
///   barrier    — dissemination, ceil(log2 P) rounds
///   bcast      — binomial tree
///   reduce     — binomial tree (mirror of bcast)
///   allreduce  — reduce + bcast
///   gather(v)  — direct to root (result collection, not perf critical)
///   allgather  — ring, P-1 steps
///   exscan     — hypercube, correct for non-commutative operators and any
///                P; its deterministic schedule is exposed so the
///                accelerated solver can replay it with cached operands.

namespace ardbt::mpsim {

/// Reserved tag space for collectives (user tags must stay below this).
namespace tags {
inline constexpr int kBarrier = 1 << 24;
inline constexpr int kBcast = (1 << 24) + 1;
inline constexpr int kReduce = (1 << 24) + 2;
inline constexpr int kGather = (1 << 24) + 3;
inline constexpr int kAllgather = (1 << 24) + 4;
inline constexpr int kExscan = (1 << 24) + 5;
}  // namespace tags

/// Block until every rank has entered the barrier (dissemination pattern).
void barrier(Comm& comm);

/// Broadcast `data` from `root` to all ranks (binomial tree). Every rank
/// must pass a buffer of identical size.
void bcast(Comm& comm, std::span<double> data, int root);

/// Elementwise-sum reduction into `inout` at `root` (binomial tree). On
/// non-root ranks `inout` is consumed as the local contribution and left
/// unspecified afterwards.
void reduce_sum(Comm& comm, std::span<double> inout, int root);

/// Elementwise-sum allreduce (reduce to 0, then bcast).
void allreduce_sum(Comm& comm, std::span<double> inout);

/// Elementwise-max allreduce.
void allreduce_max(Comm& comm, std::span<double> inout);

/// Gather equal-size contributions to `root`. On root, `out` must have
/// size P * send.size() and receives rank blocks in rank order; on other
/// ranks `out` is ignored.
void gather(Comm& comm, std::span<const double> send, std::span<double> out, int root);

/// Gather variable-size contributions to `root`. `counts` (significant at
/// root only) lists each rank's element count; blocks land in rank order.
void gatherv(Comm& comm, std::span<const double> send, std::span<const std::int64_t> counts,
             std::span<double> out, int root);

/// Ring allgather of equal-size contributions; `out` has size
/// P * send.size() on every rank.
void allgather(Comm& comm, std::span<const double> send, std::span<double> out);

/// One step of the hypercube exscan schedule. `partner_is_lower` is true
/// when the partner's block covers strictly lower ranks than ours.
struct ScanStep {
  int partner = -1;
  bool partner_is_lower = false;
};

/// Deterministic exchange schedule executed by rank `rank` in exscan over
/// `size` ranks: ceil(log2 size) rounds, rounds whose partner does not
/// exist are omitted. The accelerated solver replays this schedule with
/// cached matrix operands (see core/ard).
std::vector<ScanStep> exscan_schedule(int rank, int size);

/// Generic exclusive scan for an associative, possibly non-commutative
/// operator. `op(left, right)` must combine a value covering lower ranks
/// (`left`) with one covering higher ranks (`right`). Returns the combined
/// value over all ranks strictly below this one, or nullopt on rank 0.
///
/// `ser(T) -> std::vector<std::byte>` and
/// `des(std::span<const std::byte>) -> T` put T on the wire.
template <typename T, typename Op, typename Ser, typename Des>
std::optional<T> exscan(Comm& comm, T local, Op op, Ser ser, Des des) {
  std::optional<T> result;
  T partial = std::move(local);
  for (const ScanStep& step : exscan_schedule(comm.rank(), comm.size())) {
    const std::vector<std::byte> mine = ser(partial);
    comm.send_bytes(step.partner, tags::kExscan, mine);
    const std::vector<std::byte> raw = comm.recv_bytes(step.partner, tags::kExscan);
    T tmp = des(std::span<const std::byte>(raw));
    if (step.partner_is_lower) {
      // tmp covers the block of ranks immediately below ours.
      partial = op(tmp, partial);
      result = result ? op(std::move(tmp), *result) : std::move(tmp);
    } else {
      partial = op(partial, std::move(tmp));
    }
  }
  return result;
}

/// Generic inclusive scan: the combined value over all ranks up to and
/// including this one. Same operator contract as exscan.
template <typename T, typename Op, typename Ser, typename Des>
T scan(Comm& comm, const T& local, Op op, Ser ser, Des des) {
  T mine = local;
  std::optional<T> lower = exscan(comm, std::move(mine), op, ser, des);
  return lower ? op(*lower, local) : local;
}

/// Convenience exscan over doubles with elementwise sum; rank 0 receives
/// zeros. Used by tests to validate the schedule against a plain formula.
std::vector<double> exscan_sum(Comm& comm, std::span<const double> local);

/// Convenience inclusive scan over doubles with elementwise sum.
std::vector<double> scan_sum(Comm& comm, std::span<const double> local);

}  // namespace ardbt::mpsim
