#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "src/fault/status.hpp"
#include "src/la/matrix.hpp"
#include "src/service/factor_cache.hpp"
#include "src/service/fingerprint.hpp"
#include "src/service/resilience.hpp"

/// \file server.hpp
/// Virtual-clock admission + batching front-end over the FactorCache.
///
/// Requests are single right-hand-side columns tagged with a tenant and a
/// system fingerprint. The server coalesces columns that target the same
/// system and arrive within a batching window into one panel solve(B) —
/// turning R arrivals into one O(M^2 R) pass, which is the paper's
/// amortization argument applied to traffic instead of time steps.
///
/// Batching-window semantics: the first column queued for a system opens
/// a batch and arms its deadline at arrival + window_s. Later columns for
/// the same system join until the deadline passes or the batch reaches
/// max_batch_cols (which closes it immediately). window_s = 0 still
/// coalesces columns arriving at the same virtual instant. Closed batches
/// run on one serial executor in (deadline, fingerprint) order; a batch
/// whose turn comes while the executor is busy waits — queueing delay is
/// part of the reported latency.
///
/// Tenant model: admission quotas (tenant_queue_quota) bound how many
/// columns one tenant may have queued, and the per-batch fairness policy
/// picks columns round-robin across tenants (ascending id, one column per
/// tenant per pass, capped at tenant_batch_share) so a chatty tenant
/// cannot starve others out of a batch. Spilled columns re-arm a new
/// batch at close + window.
///
/// Resilience (docs/ROBUSTNESS.md "Service resilience"): admission runs
/// a typed pipeline — tenant quota, overload shed (queue-length +
/// executor-backlog signals), per-tenant circuit breaker, deadline
/// feasibility — and try_submit() reports which check refused. Admitted
/// columns whose deadline passes while queued are cancelled at batch
/// start. A batch whose solve throws a transient fault status is retried
/// under the per-tenant retry budget (exponential backoff + jitter, one
/// optional hedged attempt); a permanent failure is *contained* — only
/// the batch's columns complete as Outcome::kFailed, the FactorCache
/// entry is invalidated when the factorization broke down, and the
/// server keeps serving. Every admitted request therefore ends in
/// exactly one typed Completion.
///
/// Everything runs on the caller's thread against the virtual clock —
/// submit/flush order is the only schedule, so identical request
/// sequences give bit-identical completions for any --threads value.

namespace ardbt::service {

/// One right-hand-side column from one tenant.
struct Request {
  std::uint64_t id = 0;   ///< caller-assigned, echoed in the Completion
  int tenant = 0;
  int client = -1;        ///< closed-loop client index; -1 for open-loop
  Fingerprint system = 0; ///< must be registered via Server::register_system
  la::Matrix rhs;         ///< (N*M) x 1 column
  double arrival_s = 0.0; ///< virtual arrival time; non-decreasing per caller
  /// Virtual-clock deadline for the *completion*; infinity = none.
  /// Admission rejects it as infeasible when the estimated finish already
  /// misses it; the executor cancels it when its batch starts too late.
  double deadline_s = std::numeric_limits<double>::infinity();
};

/// Lifecycle timestamps and terminal state of one admitted request.
struct Completion {
  /// batch value for columns that never executed (cancelled or failed).
  static constexpr std::uint64_t kNoBatch = ~0ull;

  std::uint64_t id = 0;
  int tenant = 0;
  int client = -1;
  std::uint64_t batch = 0;  ///< index of the executed batch (0-based)
  double arrival_s = 0.0;
  double close_s = 0.0;     ///< when the batch stopped accepting columns
  double start_s = 0.0;     ///< executor start (>= close_s under contention)
  double finish_s = 0.0;    ///< completion on the virtual clock
  bool cache_hit = false;   ///< batch found its factorization resident
  Outcome outcome = Outcome::kDone;  ///< typed terminal state
  /// Failure (or degradation) class: the thrown status for kFailed,
  /// kDeadlineExceeded for cancellations, the recovery-triggering status
  /// when the batch was served via a ladder rung, kOk otherwise.
  fault::ErrorCode error = fault::ErrorCode::kOk;
  int attempts = 1;         ///< solve attempts the batch spent (1 = no retry)
  bool hedged = false;      ///< a hedged attempt was launched for the batch
  la::Matrix x;             ///< solution column (only when keep_solutions)

  double latency_s() const { return finish_s - arrival_s; }
};

struct ServerOptions {
  double window_s = 1e-3;
  la::index_t max_batch_cols = 64;
  /// Max columns one tenant may have queued (across open batches);
  /// 0 = unlimited. Exceeding it rejects the submit.
  int tenant_queue_quota = 0;
  /// Max columns one tenant gets in a single batch; 0 = unlimited.
  la::index_t tenant_batch_share = 0;
  /// Keep solution columns in completions (tests); off for load runs.
  bool keep_solutions = false;
  /// Deadline/retry/shed/breaker policies (docs/ROBUSTNESS.md). The
  /// defaults disable all of them, reproducing the pre-resilience server
  /// byte for byte.
  ResilienceOptions resilience{};
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< admission-quota rejections
  std::uint64_t served = 0;     ///< columns solved
  std::uint64_t batches = 0;
  std::uint64_t batch_cols = 0; ///< summed served batch sizes
  double busy_s = 0.0;          ///< executor busy virtual seconds
  ResilienceStats resilience;   ///< shed/breaker/retry/containment counters

  double mean_batch_cols() const {
    return batches > 0 ? static_cast<double>(batch_cols) / static_cast<double>(batches) : 0.0;
  }
};

class Server {
 public:
  Server(FactorCache& cache, ServerOptions opts) : cache_(cache), opts_(opts) {}

  /// Register the system a fingerprint denotes (the cache calls `make` on
  /// a miss). Submitting an unregistered fingerprint throws
  /// fault::InvalidArgumentError.
  void register_system(Fingerprint fp, SystemMaker make);

  /// Submit one request at rhs.arrival_s (must be >= every earlier event
  /// this server saw). Batches whose deadline already passed are flushed
  /// first. Returns the typed admission decision; anything but kAdmitted
  /// drops the request (callers decide whether to resubmit — the shed and
  /// breaker classes are explicit backpressure).
  Admission try_submit(Request req);

  /// Boolean convenience over try_submit (pre-resilience API).
  bool submit(Request req) { return try_submit(std::move(req)) == Admission::kAdmitted; }

  /// Virtual time the earliest open batch closes; +infinity when none.
  double next_close_s() const;

  /// Execute the earliest closing batch (no-op when none are open).
  void flush_next();

  /// Execute every batch closing strictly before `t_s`.
  void flush_until(double t_s);

  /// Execute everything still queued, in deadline order.
  void drain();

  /// Completions in execution order. Grows on every flush.
  const std::vector<Completion>& completions() const { return completions_; }
  /// Transfer completions out (keeps memory bounded in long load runs).
  std::vector<Completion> take_completions();

  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return opts_; }
  FactorCache& cache() { return cache_; }

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  struct OpenBatch {
    double close_s = 0.0;          ///< armed deadline
    std::vector<Request> items;    ///< arrival order
  };

  /// Execute the open batch for `fp`, closing it at `close_s`.
  void run_batch(Fingerprint fp, double close_s);
  int queued_for_tenant(int tenant) const;
  int queued_total() const;
  CircuitBreaker& breaker(int tenant);
  RetryBudget& budget(int tenant);
  /// Spend one retry token on behalf of the batch: taken from the
  /// participating tenant with the most tokens (ties -> lowest id).
  bool spend_retry_token(const std::vector<Request>& items,
                         const std::vector<std::size_t>& live);
  /// Record a terminal completion for one column.
  void complete(const Request& r, std::uint64_t batch_id, double close_s, double start_s,
                double finish_s, bool cache_hit, Outcome outcome, fault::ErrorCode error,
                int attempts, bool hedged, const la::Matrix* x, la::index_t col);

  FactorCache& cache_;
  ServerOptions opts_;
  std::map<Fingerprint, SystemMaker> systems_;
  std::map<Fingerprint, OpenBatch> open_;  ///< ordered: deterministic ties
  std::vector<Completion> completions_;
  ServerStats stats_;
  double free_s_ = 0.0;  ///< executor becomes idle at this virtual time
  /// EWMA of observed batch service times: the admission controller's
  /// feasibility estimate and the modeled cost of a failed attempt.
  double est_service_s_ = 0.0;
  bool have_est_ = false;
  std::map<int, CircuitBreaker> breakers_;  ///< per tenant
  std::map<int, RetryBudget> budgets_;      ///< per tenant
};

}  // namespace ardbt::service
