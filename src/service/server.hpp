#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "src/la/matrix.hpp"
#include "src/service/factor_cache.hpp"
#include "src/service/fingerprint.hpp"

/// \file server.hpp
/// Virtual-clock admission + batching front-end over the FactorCache.
///
/// Requests are single right-hand-side columns tagged with a tenant and a
/// system fingerprint. The server coalesces columns that target the same
/// system and arrive within a batching window into one panel solve(B) —
/// turning R arrivals into one O(M^2 R) pass, which is the paper's
/// amortization argument applied to traffic instead of time steps.
///
/// Batching-window semantics: the first column queued for a system opens
/// a batch and arms its deadline at arrival + window_s. Later columns for
/// the same system join until the deadline passes or the batch reaches
/// max_batch_cols (which closes it immediately). window_s = 0 still
/// coalesces columns arriving at the same virtual instant. Closed batches
/// run on one serial executor in (deadline, fingerprint) order; a batch
/// whose turn comes while the executor is busy waits — queueing delay is
/// part of the reported latency.
///
/// Tenant model: admission quotas (tenant_queue_quota) bound how many
/// columns one tenant may have queued, and the per-batch fairness policy
/// picks columns round-robin across tenants (ascending id, one column per
/// tenant per pass, capped at tenant_batch_share) so a chatty tenant
/// cannot starve others out of a batch. Spilled columns re-arm a new
/// batch at close + window.
///
/// Everything runs on the caller's thread against the virtual clock —
/// submit/flush order is the only schedule, so identical request
/// sequences give bit-identical completions for any --threads value.

namespace ardbt::service {

/// One right-hand-side column from one tenant.
struct Request {
  std::uint64_t id = 0;   ///< caller-assigned, echoed in the Completion
  int tenant = 0;
  int client = -1;        ///< closed-loop client index; -1 for open-loop
  Fingerprint system = 0; ///< must be registered via Server::register_system
  la::Matrix rhs;         ///< (N*M) x 1 column
  double arrival_s = 0.0; ///< virtual arrival time; non-decreasing per caller
};

/// Lifecycle timestamps of one served request.
struct Completion {
  std::uint64_t id = 0;
  int tenant = 0;
  int client = -1;
  std::uint64_t batch = 0;  ///< index of the executed batch (0-based)
  double arrival_s = 0.0;
  double close_s = 0.0;     ///< when the batch stopped accepting columns
  double start_s = 0.0;     ///< executor start (>= close_s under contention)
  double finish_s = 0.0;    ///< completion on the virtual clock
  bool cache_hit = false;   ///< batch found its factorization resident
  la::Matrix x;             ///< solution column (only when keep_solutions)

  double latency_s() const { return finish_s - arrival_s; }
};

struct ServerOptions {
  double window_s = 1e-3;
  la::index_t max_batch_cols = 64;
  /// Max columns one tenant may have queued (across open batches);
  /// 0 = unlimited. Exceeding it rejects the submit.
  int tenant_queue_quota = 0;
  /// Max columns one tenant gets in a single batch; 0 = unlimited.
  la::index_t tenant_batch_share = 0;
  /// Keep solution columns in completions (tests); off for load runs.
  bool keep_solutions = false;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< admission-quota rejections
  std::uint64_t served = 0;     ///< columns solved
  std::uint64_t batches = 0;
  std::uint64_t batch_cols = 0; ///< summed served batch sizes
  double busy_s = 0.0;          ///< executor busy virtual seconds

  double mean_batch_cols() const {
    return batches > 0 ? static_cast<double>(batch_cols) / static_cast<double>(batches) : 0.0;
  }
};

class Server {
 public:
  Server(FactorCache& cache, ServerOptions opts) : cache_(cache), opts_(opts) {}

  /// Register the system a fingerprint denotes (the cache calls `make` on
  /// a miss). Submitting an unregistered fingerprint throws
  /// fault::InvalidArgumentError.
  void register_system(Fingerprint fp, SystemMaker make);

  /// Submit one request at rhs.arrival_s (must be >= every earlier event
  /// this server saw). Batches whose deadline already passed are flushed
  /// first. Returns false (and drops the request) when the tenant is over
  /// its admission quota.
  bool submit(Request req);

  /// Virtual time the earliest open batch closes; +infinity when none.
  double next_close_s() const;

  /// Execute the earliest closing batch (no-op when none are open).
  void flush_next();

  /// Execute every batch closing strictly before `t_s`.
  void flush_until(double t_s);

  /// Execute everything still queued, in deadline order.
  void drain();

  /// Completions in execution order. Grows on every flush.
  const std::vector<Completion>& completions() const { return completions_; }
  /// Transfer completions out (keeps memory bounded in long load runs).
  std::vector<Completion> take_completions();

  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return opts_; }
  FactorCache& cache() { return cache_; }

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  struct OpenBatch {
    double close_s = 0.0;          ///< armed deadline
    std::vector<Request> items;    ///< arrival order
  };

  /// Execute the open batch for `fp`, closing it at `close_s`.
  void run_batch(Fingerprint fp, double close_s);
  int queued_for_tenant(int tenant) const;

  FactorCache& cache_;
  ServerOptions opts_;
  std::map<Fingerprint, SystemMaker> systems_;
  std::map<Fingerprint, OpenBatch> open_;  ///< ordered: deterministic ties
  std::vector<Completion> completions_;
  ServerStats stats_;
  double free_s_ = 0.0;  ///< executor becomes idle at this virtual time
};

}  // namespace ardbt::service
