#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>

#include "src/core/solver.hpp"
#include "src/service/fingerprint.hpp"

namespace ardbt::obs {
class MetricsRegistry;
}

/// \file factor_cache.hpp
/// LRU cache of factored Sessions, keyed by matrix fingerprint.
///
/// The paper's accelerated algorithm splits a solve into an O(M^3)
/// right-hand-side-independent factor phase and an O(M^2 R) solve phase;
/// the service amortizes the former across every request that hits the
/// same system. The cache owns each system through the Session's
/// shared-ownership constructor, so eviction is always safe: dropping the
/// cache entry releases the cache's reference, while any in-flight Lease
/// keeps the Session — and through it the system — alive until the last
/// solve on it returns (the eviction-during-inflight contract
/// tests/test_service.cpp pins down).
///
/// Determinism: the cache is driven from one thread on the virtual clock
/// (Sessions are not thread-safe), uses std::map/std::list internally,
/// and evicts in strict LRU order — identical request sequences produce
/// identical hit/miss/eviction sequences, bit-for-bit.

namespace ardbt::service {

/// Builds (or returns a cached) system for a fingerprint on a cache miss.
/// Returning an aliasing/non-owning pointer is legal only if the caller
/// guarantees the pointee outlives every Session the cache may create.
using SystemMaker = std::function<std::shared_ptr<const btds::BlockTridiag>()>;

class FactorCache {
 public:
  struct Options {
    core::Method method = core::Method::kArd;
    int nranks = 4;
    /// Budget for summed Session::storage_bytes() of resident entries;
    /// 0 = unlimited. The most recently acquired entry is never evicted,
    /// so a single over-budget factorization stays resident rather than
    /// thrashing.
    std::size_t byte_budget = 0;
    /// Configuration applied to every cached Session (cost model, timing
    /// mode, ladder policy, telemetry).
    core::SessionConfig session{};
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    double hit_rate() const {
      return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
    }
  };

  /// A checked-out Session. Holding the Lease (or copying its shared_ptr)
  /// keeps the Session alive across eviction; the Session keeps its
  /// system alive in turn.
  struct Lease {
    std::shared_ptr<core::Session> session;
    bool hit = false;
    /// Modeled seconds the factor phase cost on a miss (0 on a hit) —
    /// what the server charges the triggering batch.
    double factor_vtime_s = 0.0;
  };

  explicit FactorCache(Options opts) : opts_(std::move(opts)) {}

  /// Look up `fp`; on a miss, build the system via `make`, factor a
  /// Session for it, insert, and evict LRU entries while over budget.
  /// Always returns a usable Lease.
  Lease acquire(Fingerprint fp, const SystemMaker& make);

  /// Drop the entry for `fp` (no-op, returning false, when not resident).
  /// The server calls this when a batch on the entry hit a factorization
  /// breakdown: the cached Session is suspect, so the next acquire
  /// refactors from scratch. Same lifetime contract as eviction —
  /// in-flight Leases keep the dropped Session (and its system) alive and
  /// solvable until the last one releases it.
  bool invalidate(Fingerprint fp);

  bool contains(Fingerprint fp) const { return entries_.count(fp) > 0; }
  std::size_t size() const { return entries_.size(); }
  /// Summed storage_bytes() of resident entries.
  std::size_t resident_bytes() const { return resident_bytes_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return opts_; }

  /// Gauges/counters under "service.cache.*".
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct Entry {
    std::shared_ptr<core::Session> session;
    std::size_t bytes = 0;
    std::list<Fingerprint>::iterator lru_it;  ///< position in lru_
  };

  void touch(Entry& e);
  void evict_while_over_budget();

  Options opts_;
  Stats stats_;
  std::size_t resident_bytes_ = 0;
  std::list<Fingerprint> lru_;             ///< front = most recently used
  std::map<Fingerprint, Entry> entries_;   ///< ordered: deterministic iteration
};

}  // namespace ardbt::service
