#pragma once

#include <cstdint>
#include <string_view>

#include "src/fault/status.hpp"

namespace ardbt::obs {
class MetricsRegistry;
}

/// \file resilience.hpp
/// Service-resilience vocabulary and policies: typed request outcomes,
/// admission decisions, a per-tenant circuit breaker and retry budget,
/// and the counters the server exports for them.
///
/// This is the layer that connects the fault machinery (seeded
/// FaultPlans injected into mpsim::Comm, the transient/permanent split in
/// fault::is_transient) to the service loop (docs/SERVICE.md): every
/// request ends in exactly one typed terminal state, a transient solve
/// failure is retried under an explicit budget, overload is shed at
/// admission instead of queuing without bound, and a failing tenant is
/// isolated by a breaker instead of burning executor time on every
/// arrival.
///
/// Everything here is deterministic on the virtual clock: breaker and
/// budget state advance only on submit/completion events, and the only
/// randomness (retry-backoff jitter) comes from the shared splitmix64
/// stream in rng.hpp — identical request sequences give bit-identical
/// decisions for any --threads value.

namespace ardbt::service {

/// Terminal state of a request that was admitted (Completion::outcome).
/// Admission-time rejections never become Completions; they are reported
/// through Admission and the ServerStats counters instead, so the two
/// enums together cover "exactly one typed terminal state per request".
enum class Outcome : std::uint8_t {
  kDone,              ///< solved; the completion carries the solution
  kFailed,            ///< solve failed permanently (Completion::error says why)
  kDeadlineExceeded,  ///< cancelled: the deadline passed while queued
};

/// Stable lowercase name ("done", "failed", "deadline-exceeded").
std::string_view to_string(Outcome outcome);

/// Admission decision for one submitted request, in the order the
/// controller applies the checks (quota, then overload shed, then the
/// tenant breaker, then deadline feasibility).
enum class Admission : std::uint8_t {
  kAdmitted,
  kRejectedQuota,       ///< tenant over its queued-columns quota
  kShed,                ///< overload controller refused (queue/backlog bound)
  kCircuitOpen,         ///< tenant breaker open after consecutive failures
  kDeadlineInfeasible,  ///< deadline unmeetable even if started immediately
};

/// Stable lowercase name ("admitted", "rejected-quota", "shed", ...).
std::string_view to_string(Admission admission);

/// The fault::ErrorCode an admission rejection maps to (kOk for
/// kAdmitted) — what the CLI and loadgen report per rejection class.
fault::ErrorCode admission_error(Admission admission);

struct ResilienceOptions {
  /// Service-level re-solves of a batch that failed with a *transient*
  /// status (fault::is_transient). 0 disables retries entirely.
  int max_retries = 0;
  /// Mean backoff before retry k is 2^(k-1) * retry_backoff_s, jittered
  /// to [0.5, 1.5) of the mean from the splitmix64 stream seeded below.
  double retry_backoff_s = 5e-4;
  /// When on, the first retry is a hedged attempt: modeled as launched
  /// hedge_delay_s after the primary, overlapping it, so a transient
  /// primary failure costs the hedge delay instead of a full failed
  /// attempt plus backoff. Later retries back off normally.
  bool hedge = false;
  /// Hedge launch delay; 0 means half the observed service-time estimate.
  double hedge_delay_s = 0.0;
  /// Per-tenant retry budget: every admitted column accrues this many
  /// tokens (capped at retry_budget_burst); each retry or hedge spends
  /// one whole token. Keeps retries a bounded fraction of offered load so
  /// they cannot amplify overload.
  double retry_budget_ratio = 0.1;
  double retry_budget_burst = 4.0;
  /// Shed admissions while this many columns are already queued across
  /// open batches; 0 = off.
  int shed_queue_cols = 0;
  /// Shed admissions while the executor backlog (busy-until minus the
  /// arrival instant) exceeds this; 0 = off. This is the observed-latency
  /// signal: it grows exactly when completions are running late.
  double shed_backlog_s = 0.0;
  /// Trip a tenant's breaker after this many consecutive failed columns;
  /// 0 = breaker off.
  int breaker_failures = 0;
  /// An open breaker half-opens (admits probes again) after this long.
  double breaker_cooldown_s = 0.1;
  /// Seed of the retry-backoff jitter stream.
  std::uint64_t seed = 0x5eedull;
};

/// Counters of every resilience decision (ServerStats::resilience).
struct ResilienceStats {
  std::uint64_t shed = 0;                ///< admissions refused by overload control
  std::uint64_t breaker_rejected = 0;    ///< admissions refused by an open breaker
  std::uint64_t deadline_infeasible = 0; ///< admissions refused as unmeetable
  std::uint64_t deadline_cancelled = 0;  ///< queued columns cancelled at batch start
  std::uint64_t failed_cols = 0;         ///< columns completed as Outcome::kFailed
  std::uint64_t degraded_cols = 0;       ///< columns served via a recovery rung
  std::uint64_t retries = 0;             ///< service-level batch re-solves
  std::uint64_t hedges = 0;              ///< retries taken as hedged attempts
  std::uint64_t retries_denied = 0;      ///< retries refused by the budget
  std::uint64_t breaker_trips = 0;       ///< closed/half-open -> open transitions
  std::uint64_t invalidations = 0;       ///< cache entries dropped after breakdown
  std::uint64_t contained_batches = 0;   ///< batch failures contained to their columns
};

/// Counters under "service.resilience.*".
void export_resilience_metrics(const ResilienceStats& stats, obs::MetricsRegistry& reg);

/// Per-tenant circuit breaker on the virtual clock. Closed admits
/// everything and counts consecutive failures; `threshold` consecutive
/// failures trip it open; open rejects until `cooldown_s` elapsed, then
/// half-opens; in half-open the first failure re-trips (a fresh cooldown)
/// and the first success closes. A threshold of 0 disables the breaker
/// (always allows, never trips).
///
/// Failure times are batch *finish* times while admission queries use
/// *arrival* times; both move forward with the simulation, and the small
/// skew between them (an executor finish can be modeled past the next
/// arrival) is deterministic, so replays are bit-identical.
class CircuitBreaker {
 public:
  CircuitBreaker(int threshold, double cooldown_s)
      : threshold_(threshold), cooldown_s_(cooldown_s) {}

  /// Admission query at virtual time `now_s`; may transition open ->
  /// half-open when the cooldown has elapsed.
  bool allow(double now_s);
  /// One column of this tenant completed successfully.
  void on_success();
  /// One column of this tenant failed at virtual time `now_s`. Returns
  /// true when this failure tripped (or re-tripped) the breaker.
  bool on_failure(double now_s);

  bool is_open() const { return state_ == State::kOpen; }
  std::uint64_t trips() const { return trips_; }

 private:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  int threshold_;
  double cooldown_s_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  double open_until_s_ = 0.0;
  std::uint64_t trips_ = 0;
};

/// Per-tenant retry token bucket: admissions accrue fractional tokens,
/// each retry spends a whole one. Starts full so a cold tenant can retry
/// its first transient failure.
class RetryBudget {
 public:
  RetryBudget(double ratio, double burst) : ratio_(ratio), burst_(burst), tokens_(burst) {}

  void on_admit() { tokens_ = tokens_ + ratio_ > burst_ ? burst_ : tokens_ + ratio_; }
  bool try_spend() {
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }
  double tokens() const { return tokens_; }

 private:
  double ratio_;
  double burst_;
  double tokens_;
};

}  // namespace ardbt::service
