#include "src/service/fingerprint.hpp"

namespace ardbt::service {

namespace {
// Domain tags keep the content and params key spaces disjoint.
constexpr std::uint64_t kContentDomain = 0x61726474'636f6e74ull;  // "ardt" "cont"
constexpr std::uint64_t kParamsDomain = 0x61726474'70726d73ull;   // "ardt" "prms"
}  // namespace

Fingerprint fingerprint(const btds::BlockTridiag& sys) {
  Fnv1a h;
  h.u64(kContentDomain);
  h.u64(static_cast<std::uint64_t>(sys.num_blocks()));
  h.u64(static_cast<std::uint64_t>(sys.block_size()));
  const la::index_t n = sys.num_blocks();
  for (la::index_t i = 1; i < n; ++i) h.f64(sys.lower(i).data());
  for (la::index_t i = 0; i < n; ++i) h.f64(sys.diag(i).data());
  for (la::index_t i = 0; i + 1 < n; ++i) h.f64(sys.upper(i).data());
  return h.digest();
}

Fingerprint fingerprint_params(btds::ProblemKind kind, la::index_t num_blocks,
                               la::index_t block_size, std::uint64_t seed) {
  Fnv1a h;
  h.u64(kParamsDomain);
  h.u64(static_cast<std::uint64_t>(kind));
  h.u64(static_cast<std::uint64_t>(num_blocks));
  h.u64(static_cast<std::uint64_t>(block_size));
  h.u64(seed);
  return h.digest();
}

}  // namespace ardbt::service
