#include "src/service/factor_cache.hpp"

#include "src/obs/metrics.hpp"

namespace ardbt::service {

void FactorCache::touch(Entry& e) { lru_.splice(lru_.begin(), lru_, e.lru_it); }

FactorCache::Lease FactorCache::acquire(Fingerprint fp, const SystemMaker& make) {
  ++stats_.lookups;
  auto it = entries_.find(fp);
  if (it != entries_.end()) {
    ++stats_.hits;
    touch(it->second);
    return Lease{it->second.session, /*hit=*/true, 0.0};
  }
  ++stats_.misses;
  std::shared_ptr<const btds::BlockTridiag> sys = make();
  auto session =
      std::make_shared<core::Session>(opts_.method, std::move(sys), opts_.nranks, opts_.session);
  session->factor();
  const double factor_vtime_s = session->factor_vtime();

  Entry entry;
  entry.session = session;
  entry.bytes = session->storage_bytes();
  lru_.push_front(fp);
  entry.lru_it = lru_.begin();
  resident_bytes_ += entry.bytes;
  entries_.emplace(fp, std::move(entry));
  evict_while_over_budget();
  return Lease{std::move(session), /*hit=*/false, factor_vtime_s};
}

bool FactorCache::invalidate(Fingerprint fp) {
  auto it = entries_.find(fp);
  if (it == entries_.end()) return false;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);  // in-flight Leases still hold the Session
  ++stats_.invalidations;
  return true;
}

void FactorCache::evict_while_over_budget() {
  if (opts_.byte_budget == 0) return;
  // Never evict the MRU entry (the one just inserted or touched): a single
  // over-budget factorization stays resident instead of thrashing.
  while (resident_bytes_ > opts_.byte_budget && entries_.size() > 1) {
    const Fingerprint victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);  // in-flight Leases still hold the Session
    ++stats_.evictions;
  }
}

void FactorCache::export_metrics(obs::MetricsRegistry& reg) const {
  reg.gauge("service.cache.entries").set(static_cast<double>(entries_.size()));
  reg.gauge("service.cache.resident_bytes").set(static_cast<double>(resident_bytes_));
  reg.gauge("service.cache.hit_rate").set(stats_.hit_rate());
  reg.counter("service.cache.lookups").add(stats_.lookups);
  reg.counter("service.cache.hits").add(stats_.hits);
  reg.counter("service.cache.misses").add(stats_.misses);
  reg.counter("service.cache.evictions").add(stats_.evictions);
  reg.counter("service.cache.invalidations").add(stats_.invalidations);
}

}  // namespace ardbt::service
