#include "src/service/server.hpp"

#include <algorithm>
#include <deque>

#include "src/fault/status.hpp"

namespace ardbt::service {

void Server::register_system(Fingerprint fp, SystemMaker make) {
  systems_[fp] = std::move(make);
}

int Server::queued_for_tenant(int tenant) const {
  int count = 0;
  for (const auto& [fp, batch] : open_) {
    for (const Request& r : batch.items) {
      if (r.tenant == tenant) ++count;
    }
  }
  return count;
}

bool Server::submit(Request req) {
  flush_until(req.arrival_s);
  if (systems_.find(req.system) == systems_.end()) {
    throw fault::InvalidArgumentError("service::Server::submit", "unregistered system fingerprint");
  }
  if (req.rhs.cols() != 1) {
    throw fault::InvalidArgumentError("service::Server::submit", "rhs must be a single column");
  }
  if (opts_.tenant_queue_quota > 0 && queued_for_tenant(req.tenant) >= opts_.tenant_queue_quota) {
    ++stats_.rejected;
    return false;
  }
  ++stats_.submitted;
  const Fingerprint fp = req.system;
  const double arrival_s = req.arrival_s;
  auto it = open_.find(fp);
  if (it == open_.end()) {
    it = open_.emplace(fp, OpenBatch{arrival_s + opts_.window_s, {}}).first;
  }
  it->second.items.push_back(std::move(req));
  if (opts_.max_batch_cols > 0 &&
      static_cast<la::index_t>(it->second.items.size()) >= opts_.max_batch_cols) {
    run_batch(fp, arrival_s);  // cap reached: close immediately
  }
  return true;
}

double Server::next_close_s() const {
  double best = kNever;
  for (const auto& [fp, batch] : open_) {
    // Strict < keeps the smallest fingerprint on ties (map order).
    if (batch.close_s < best) best = batch.close_s;
  }
  return best;
}

void Server::flush_next() {
  double best = kNever;
  Fingerprint best_fp = 0;
  for (const auto& [fp, batch] : open_) {
    if (batch.close_s < best) {
      best = batch.close_s;
      best_fp = fp;
    }
  }
  if (best < kNever) run_batch(best_fp, best);
}

void Server::flush_until(double t_s) {
  while (next_close_s() < t_s) flush_next();
}

void Server::drain() {
  while (!open_.empty()) flush_next();
}

std::vector<Completion> Server::take_completions() {
  std::vector<Completion> out;
  out.swap(completions_);
  return out;
}

void Server::run_batch(Fingerprint fp, double close_s) {
  auto open_it = open_.find(fp);
  if (open_it == open_.end()) return;
  std::vector<Request> items = std::move(open_it->second.items);
  open_.erase(open_it);

  // Fairness: round-robin one column per tenant per pass, ascending
  // tenant id, within-tenant arrival order, capped by tenant_batch_share
  // and max_batch_cols. `selected` is the panel column order.
  std::map<int, std::deque<std::size_t>> per_tenant;
  for (std::size_t i = 0; i < items.size(); ++i) {
    per_tenant[items[i].tenant].push_back(i);
  }
  std::vector<std::size_t> selected;
  std::map<int, la::index_t> taken;
  bool progressed = true;
  while (progressed &&
         (opts_.max_batch_cols == 0 ||
          static_cast<la::index_t>(selected.size()) < opts_.max_batch_cols)) {
    progressed = false;
    for (auto& [tenant, queue] : per_tenant) {
      if (queue.empty()) continue;
      if (opts_.tenant_batch_share > 0 && taken[tenant] >= opts_.tenant_batch_share) continue;
      if (opts_.max_batch_cols > 0 &&
          static_cast<la::index_t>(selected.size()) >= opts_.max_batch_cols) {
        break;
      }
      selected.push_back(queue.front());
      queue.pop_front();
      ++taken[tenant];
      progressed = true;
    }
  }

  // Spill: columns that did not make the batch re-arm a fresh window.
  std::vector<Request> spill;
  for (auto& [tenant, queue] : per_tenant) {
    for (std::size_t i : queue) spill.push_back(std::move(items[i]));
  }
  if (!spill.empty()) {
    std::sort(spill.begin(), spill.end(),
              [](const Request& a, const Request& b) { return a.id < b.id; });
    OpenBatch rearmed{close_s + opts_.window_s, std::move(spill)};
    open_.emplace(fp, std::move(rearmed));
  }

  // Assemble the panel and run it through the cached Session. The Lease
  // keeps the Session alive even if acquiring a *different* system later
  // evicts this entry.
  FactorCache::Lease lease = cache_.acquire(fp, systems_.at(fp));
  const la::index_t rows = items[selected.front()].rhs.rows();
  const la::index_t cols = static_cast<la::index_t>(selected.size());
  la::Matrix panel(rows, cols);
  for (la::index_t j = 0; j < cols; ++j) {
    const la::Matrix& col = items[selected[static_cast<std::size_t>(j)]].rhs;
    if (col.rows() != rows) {
      throw fault::InvalidArgumentError("service::Server", "mixed rhs sizes in one batch");
    }
    for (la::index_t i = 0; i < rows; ++i) panel(i, j) = col(i, 0);
  }
  la::Matrix x = lease.session->solve(panel);
  const double solve_s = lease.session->solve_vtimes().back();

  const double start_s = std::max(close_s, free_s_);
  const double service_s = (lease.hit ? 0.0 : lease.factor_vtime_s) + solve_s;
  const double finish_s = start_s + service_s;
  free_s_ = finish_s;

  const std::uint64_t batch_id = stats_.batches;
  ++stats_.batches;
  stats_.served += static_cast<std::uint64_t>(cols);
  stats_.batch_cols += static_cast<std::uint64_t>(cols);
  stats_.busy_s += service_s;

  for (la::index_t j = 0; j < cols; ++j) {
    const Request& r = items[selected[static_cast<std::size_t>(j)]];
    Completion c;
    c.id = r.id;
    c.tenant = r.tenant;
    c.client = r.client;
    c.batch = batch_id;
    c.arrival_s = r.arrival_s;
    c.close_s = close_s;
    c.start_s = start_s;
    c.finish_s = finish_s;
    c.cache_hit = lease.hit;
    if (opts_.keep_solutions) {
      la::Matrix col(rows, 1);
      for (la::index_t i = 0; i < rows; ++i) col(i, 0) = x(i, j);
      c.x = std::move(col);
    }
    completions_.push_back(std::move(c));
  }
}

}  // namespace ardbt::service
