#include "src/service/server.hpp"

#include <algorithm>
#include <deque>

#include "src/service/rng.hpp"

namespace ardbt::service {

void Server::register_system(Fingerprint fp, SystemMaker make) {
  systems_[fp] = std::move(make);
}

int Server::queued_for_tenant(int tenant) const {
  int count = 0;
  for (const auto& [fp, batch] : open_) {
    for (const Request& r : batch.items) {
      if (r.tenant == tenant) ++count;
    }
  }
  return count;
}

int Server::queued_total() const {
  int count = 0;
  for (const auto& [fp, batch] : open_) count += static_cast<int>(batch.items.size());
  return count;
}

CircuitBreaker& Server::breaker(int tenant) {
  auto it = breakers_.find(tenant);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(tenant, CircuitBreaker(opts_.resilience.breaker_failures,
                                             opts_.resilience.breaker_cooldown_s))
             .first;
  }
  return it->second;
}

RetryBudget& Server::budget(int tenant) {
  auto it = budgets_.find(tenant);
  if (it == budgets_.end()) {
    it = budgets_
             .emplace(tenant, RetryBudget(opts_.resilience.retry_budget_ratio,
                                          opts_.resilience.retry_budget_burst))
             .first;
  }
  return it->second;
}

Admission Server::try_submit(Request req) {
  flush_until(req.arrival_s);
  if (systems_.find(req.system) == systems_.end()) {
    throw fault::InvalidArgumentError("service::Server::submit", "unregistered system fingerprint");
  }
  if (req.rhs.cols() != 1) {
    throw fault::InvalidArgumentError("service::Server::submit", "rhs must be a single column");
  }
  const ResilienceOptions& rs = opts_.resilience;
  // Admission pipeline: quota, overload shed, tenant breaker, deadline
  // feasibility — cheapest and most tenant-local first, so a shed storm
  // never masks a misbehaving tenant's quota signal.
  if (opts_.tenant_queue_quota > 0 && queued_for_tenant(req.tenant) >= opts_.tenant_queue_quota) {
    ++stats_.rejected;
    return Admission::kRejectedQuota;
  }
  if (rs.shed_queue_cols > 0 && queued_total() >= rs.shed_queue_cols) {
    ++stats_.resilience.shed;
    return Admission::kShed;
  }
  if (rs.shed_backlog_s > 0.0 && free_s_ - req.arrival_s > rs.shed_backlog_s) {
    ++stats_.resilience.shed;
    return Admission::kShed;
  }
  if (rs.breaker_failures > 0 && !breaker(req.tenant).allow(req.arrival_s)) {
    ++stats_.resilience.breaker_rejected;
    return Admission::kCircuitOpen;
  }
  if (req.deadline_s < kNever) {
    // Earliest the column can finish: its batch's close (the open one, or
    // a fresh window from now), the executor going idle, plus the
    // service-time estimate. A deadline already inside that horizon
    // cannot be met — reject now instead of burning queue space.
    auto open_it = open_.find(req.system);
    const double close_est =
        open_it != open_.end() ? open_it->second.close_s : req.arrival_s + opts_.window_s;
    const double finish_est = std::max(close_est, free_s_) + est_service_s_;
    if (req.deadline_s < finish_est) {
      ++stats_.resilience.deadline_infeasible;
      return Admission::kDeadlineInfeasible;
    }
  }
  ++stats_.submitted;
  if (rs.max_retries > 0) budget(req.tenant).on_admit();
  const Fingerprint fp = req.system;
  const double arrival_s = req.arrival_s;
  auto it = open_.find(fp);
  if (it == open_.end()) {
    it = open_.emplace(fp, OpenBatch{arrival_s + opts_.window_s, {}}).first;
  }
  it->second.items.push_back(std::move(req));
  if (opts_.max_batch_cols > 0 &&
      static_cast<la::index_t>(it->second.items.size()) >= opts_.max_batch_cols) {
    run_batch(fp, arrival_s);  // cap reached: close immediately
  }
  return Admission::kAdmitted;
}

double Server::next_close_s() const {
  double best = kNever;
  for (const auto& [fp, batch] : open_) {
    // Strict < keeps the smallest fingerprint on ties (map order).
    if (batch.close_s < best) best = batch.close_s;
  }
  return best;
}

void Server::flush_next() {
  double best = kNever;
  Fingerprint best_fp = 0;
  for (const auto& [fp, batch] : open_) {
    if (batch.close_s < best) {
      best = batch.close_s;
      best_fp = fp;
    }
  }
  if (best < kNever) run_batch(best_fp, best);
}

void Server::flush_until(double t_s) {
  while (next_close_s() < t_s) flush_next();
}

void Server::drain() {
  while (!open_.empty()) flush_next();
}

std::vector<Completion> Server::take_completions() {
  std::vector<Completion> out;
  out.swap(completions_);
  return out;
}

void Server::run_batch(Fingerprint fp, double close_s) {
  auto open_it = open_.find(fp);
  if (open_it == open_.end()) return;
  std::vector<Request> items = std::move(open_it->second.items);
  open_.erase(open_it);

  // Fairness: round-robin one column per tenant per pass, ascending
  // tenant id, within-tenant arrival order, capped by tenant_batch_share
  // and max_batch_cols. `selected` is the panel column order.
  std::map<int, std::deque<std::size_t>> per_tenant;
  for (std::size_t i = 0; i < items.size(); ++i) {
    per_tenant[items[i].tenant].push_back(i);
  }
  std::vector<std::size_t> selected;
  std::map<int, la::index_t> taken;
  bool progressed = true;
  while (progressed &&
         (opts_.max_batch_cols == 0 ||
          static_cast<la::index_t>(selected.size()) < opts_.max_batch_cols)) {
    progressed = false;
    for (auto& [tenant, queue] : per_tenant) {
      if (queue.empty()) continue;
      if (opts_.tenant_batch_share > 0 && taken[tenant] >= opts_.tenant_batch_share) continue;
      if (opts_.max_batch_cols > 0 &&
          static_cast<la::index_t>(selected.size()) >= opts_.max_batch_cols) {
        break;
      }
      selected.push_back(queue.front());
      queue.pop_front();
      ++taken[tenant];
      progressed = true;
    }
  }

  // Spill: columns that did not make the batch re-arm a fresh window.
  std::vector<Request> spill;
  for (auto& [tenant, queue] : per_tenant) {
    for (std::size_t i : queue) spill.push_back(std::move(items[i]));
  }
  if (!spill.empty()) {
    std::sort(spill.begin(), spill.end(),
              [](const Request& a, const Request& b) { return a.id < b.id; });
    OpenBatch rearmed{close_s + opts_.window_s, std::move(spill)};
    open_.emplace(fp, std::move(rearmed));
  }

  // Deadline cancellation: the executor is busy until free_s_, so a
  // column whose deadline precedes the batch's actual start can no longer
  // be served — it completes as kDeadlineExceeded without touching the
  // solver, and the rest of the batch proceeds.
  const double start_s = std::max(close_s, free_s_);
  std::vector<std::size_t> live;
  live.reserve(selected.size());
  for (std::size_t idx : selected) {
    const Request& r = items[idx];
    if (r.deadline_s < start_s) {
      ++stats_.resilience.deadline_cancelled;
      complete(r, Completion::kNoBatch, close_s, start_s, start_s, false,
               Outcome::kDeadlineExceeded, fault::ErrorCode::kDeadlineExceeded, 0, false, nullptr,
               0);
    } else {
      live.push_back(idx);
    }
  }
  if (live.empty()) return;

  // Assemble the panel over the surviving columns.
  const la::index_t rows = items[live.front()].rhs.rows();
  const la::index_t cols = static_cast<la::index_t>(live.size());
  la::Matrix panel(rows, cols);
  for (la::index_t j = 0; j < cols; ++j) {
    const la::Matrix& col = items[live[static_cast<std::size_t>(j)]].rhs;
    if (col.rows() != rows) {
      throw fault::InvalidArgumentError("service::Server", "mixed rhs sizes in one batch");
    }
    for (la::index_t i = 0; i < rows; ++i) panel(i, j) = col(i, 0);
  }

  // Solve through the cached Session, retrying transient failures under
  // the per-tenant budget. The Lease keeps the Session alive even if
  // acquiring a *different* system later evicts this entry. Failed
  // attempts are charged the service-time estimate (the engine run never
  // completed, so there is no measured time for it); the jitter stream is
  // seeded from the first live request id, so replays are bit-identical.
  const ResilienceOptions& rs = opts_.resilience;
  std::uint64_t jitter_state = rs.seed ^ (0x9e3779b97f4a7c15ull * (items[live.front()].id + 1));
  FactorCache::Lease lease;
  la::Matrix x;
  fault::Status failure;
  bool batch_failed = false;
  bool hedged = false;
  int attempts = 0;
  double waited_s = 0.0;  // virtual seconds of failed attempts + backoff
  for (;;) {
    ++attempts;
    try {
      lease = cache_.acquire(fp, systems_.at(fp));
      x = lease.session->solve(panel);
      break;
    } catch (const fault::InvalidArgumentError&) {
      throw;  // caller bug, not a runtime fault — containment does not apply
    } catch (const fault::SolveError& e) {
      failure = e.status();
      waited_s += est_service_s_;  // the failed attempt occupied the executor
      const bool want_retry =
          fault::is_transient(failure) && rs.max_retries > 0 && attempts <= rs.max_retries;
      if (want_retry && spend_retry_token(items, live)) {
        ++stats_.resilience.retries;
        if (rs.hedge && !hedged && (rs.hedge_delay_s > 0.0 || have_est_)) {
          // Hedged attempt: modeled as launched hedge_delay after the
          // primary, overlapping it — the failed primary costs only the
          // hedge delay instead of its full estimate plus a backoff.
          // Cold start guard: before the first completion the EWMA has no
          // sample (est_service_s_ == 0), so a derived hedge delay would be
          // zero — a free instant hedge for every transient failure in the
          // cold window. Without an explicit --hedge-delay the first
          // attempt falls back to the jittered backoff instead and hedging
          // arms itself once a real service time has been observed.
          hedged = true;
          ++stats_.resilience.hedges;
          const double delay =
              rs.hedge_delay_s > 0.0 ? rs.hedge_delay_s : 0.5 * est_service_s_;
          waited_s = std::max(0.0, waited_s - est_service_s_) + delay;
        } else {
          const double mean = rs.retry_backoff_s * static_cast<double>(1ull << (attempts - 1));
          waited_s += jittered(jitter_state, mean);
        }
        continue;
      }
      if (want_retry) ++stats_.resilience.retries_denied;
      batch_failed = true;
      break;
    }
  }

  if (batch_failed) {
    // Containment: only this batch's columns fail; the server loop and
    // every other tenant's work continue. A factorization breakdown also
    // drops the (suspect) cache entry so the next request refactors. The
    // per-incident postmortem bundle was already written by the Session's
    // own telemetry when the error was thrown.
    const fault::ErrorCode code = failure.code();
    if (code == fault::ErrorCode::kSingularPivot || code == fault::ErrorCode::kNonSpdPivot ||
        code == fault::ErrorCode::kBreakdown) {
      if (cache_.invalidate(fp)) ++stats_.resilience.invalidations;
    }
    ++stats_.resilience.contained_batches;
    const double finish_s = start_s + waited_s;
    free_s_ = finish_s;
    stats_.busy_s += finish_s - start_s;
    for (std::size_t idx : live) {
      const Request& r = items[idx];
      ++stats_.resilience.failed_cols;
      if (rs.breaker_failures > 0 && breaker(r.tenant).on_failure(finish_s)) {
        ++stats_.resilience.breaker_trips;
      }
      complete(r, Completion::kNoBatch, close_s, start_s, finish_s, false, Outcome::kFailed, code,
               attempts, hedged, nullptr, 0);
    }
    return;
  }

  const double solve_s = lease.session->solve_vtimes().back();
  const double service_s = (lease.hit ? 0.0 : lease.factor_vtime_s) + solve_s;
  const double finish_s = start_s + waited_s + service_s;
  free_s_ = finish_s;
  est_service_s_ = have_est_ ? 0.5 * est_service_s_ + 0.5 * service_s : service_s;
  have_est_ = true;

  // A served batch can still be degraded: the ladder recovered (refine or
  // fallback rung), but the triggering status is surfaced per column and
  // a breakdown-flagged factorization is not worth reusing from cache.
  fault::ErrorCode served_error = fault::ErrorCode::kOk;
  if (const core::SolveOutcome* last = lease.session->last_outcome();
      last != nullptr && last->action != "ok") {
    // A recovery rung without a recorded trigger (refine/fallback solves
    // log status ok) still means "served degraded": surface kBreakdown.
    served_error = last->status.code() != fault::ErrorCode::kOk ? last->status.code()
                                                                : fault::ErrorCode::kBreakdown;
  }
  if (lease.session->breakdown()) {
    if (cache_.invalidate(fp)) ++stats_.resilience.invalidations;
  }

  const std::uint64_t batch_id = stats_.batches;
  ++stats_.batches;
  stats_.served += static_cast<std::uint64_t>(cols);
  stats_.batch_cols += static_cast<std::uint64_t>(cols);
  stats_.busy_s += finish_s - start_s;

  for (la::index_t j = 0; j < cols; ++j) {
    const Request& r = items[live[static_cast<std::size_t>(j)]];
    if (served_error != fault::ErrorCode::kOk) ++stats_.resilience.degraded_cols;
    if (rs.breaker_failures > 0) breaker(r.tenant).on_success();
    complete(r, batch_id, close_s, start_s, finish_s, lease.hit, Outcome::kDone, served_error,
             attempts, hedged, &x, j);
  }
}

bool Server::spend_retry_token(const std::vector<Request>& items,
                               const std::vector<std::size_t>& live) {
  int best_tenant = -1;
  double best_tokens = -1.0;
  for (std::size_t idx : live) {
    const int tenant = items[idx].tenant;
    const double tokens = budget(tenant).tokens();
    if (tokens > best_tokens) {
      best_tokens = tokens;
      best_tenant = tenant;
    }
  }
  return best_tenant >= 0 && budget(best_tenant).try_spend();
}

void Server::complete(const Request& r, std::uint64_t batch_id, double close_s, double start_s,
                      double finish_s, bool cache_hit, Outcome outcome, fault::ErrorCode error,
                      int attempts, bool hedged, const la::Matrix* x, la::index_t col) {
  Completion c;
  c.id = r.id;
  c.tenant = r.tenant;
  c.client = r.client;
  c.batch = batch_id;
  c.arrival_s = r.arrival_s;
  c.close_s = close_s;
  c.start_s = start_s;
  c.finish_s = finish_s;
  c.cache_hit = cache_hit;
  c.outcome = outcome;
  c.error = error;
  c.attempts = attempts;
  c.hedged = hedged;
  if (opts_.keep_solutions && x != nullptr) {
    la::Matrix column(x->rows(), 1);
    for (la::index_t i = 0; i < x->rows(); ++i) column(i, 0) = (*x)(i, col);
    c.x = std::move(column);
  }
  completions_.push_back(std::move(c));
}

}  // namespace ardbt::service
