#pragma once

#include <cstdint>

/// \file rng.hpp
/// The service layer's only randomness: a splitmix64 stream plus the
/// bounded-jitter helpers built on it. Extracted from loadgen.cpp so the
/// load generator and the resilience machinery (retry backoff jitter,
/// deadline spread) draw from one shared, test-pinned implementation —
/// tests/test_resilience.cpp goldens the exact sequences, which is what
/// makes "byte-identical across reruns and --threads" checkable.
///
/// No std::random device, no host entropy, no libm: every value is a pure
/// arithmetic function of the caller-held state word, so replays are
/// byte-identical on any toolchain and any thread count.

namespace ardbt::service {

/// splitmix64 — advances `state` and returns the next 64-bit draw.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform draw in [0, 1) with 53 random mantissa bits.
inline double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Jittered interval with mean `mean_s`, drawn from [0.5, 1.5) * mean.
/// Bounded on purpose (no exponential tail): keeps every interval a
/// plain arithmetic function of the RNG stream, with no libm calls whose
/// rounding could differ across toolchains.
inline double jittered(std::uint64_t& state, double mean_s) {
  return mean_s * (0.5 + uniform01(state));
}

}  // namespace ardbt::service
