#pragma once

#include <cstdint>
#include <map>

#include "src/btds/generators.hpp"
#include "src/service/server.hpp"

namespace ardbt::obs {
class MetricsRegistry;
}
namespace ardbt::obs::live {
class Watchdogs;
}

/// \file loadgen.hpp
/// Deterministic closed/open-loop load generator for the service layer.
///
/// Replays a population of clients hammering a pool of cached
/// factorizations on the virtual clock. Closed loop: each client keeps
/// one request in flight, thinks for a deterministic jittered interval
/// after its completion, then issues the next — the classic
/// machine-repairman shape whose offered load self-throttles under
/// latency. Open loop: arrivals at a fixed jittered rate regardless of
/// completions — the overload shape. Both are pure functions of
/// (LoadOptions, ServerOptions, FactorCache::Options): no host clock, no
/// std::random device — a splitmix64 stream drives every choice, so two
/// runs (at any --threads) produce byte-identical results.
///
/// System popularity is a hot/cold mix: a fraction `hot_fraction` of
/// requests target the `hot` first systems of the pool uniformly; the
/// rest spread uniformly over the remainder. With the default mix the
/// batch-level cache hit rate lands well above 90% — the amortization
/// regime the service exists for.

namespace ardbt::service {

enum class Arrival {
  kClosed,  ///< fixed population, think time between requests
  kOpen,    ///< fixed arrival rate, ignores completions
};

struct LoadOptions {
  Arrival arrival = Arrival::kClosed;
  int requests = 4096;      ///< total requests to issue
  int tenants = 4;
  int clients = 64;         ///< closed-loop population
  double think_s = 2e-3;    ///< closed-loop mean think time
  double rate_rps = 50e3;   ///< open-loop arrival rate
  int pool = 8;             ///< distinct systems
  int hot = 2;              ///< hot-set size (<= pool)
  double hot_fraction = 0.9;
  la::index_t num_blocks = 96;
  la::index_t block_size = 8;
  btds::ProblemKind kind = btds::ProblemKind::kDiagDominant;
  std::uint64_t seed = 1;
  double retry_backoff_s = 1e-3;  ///< closed-loop resubmit delay after a rejection
  /// Mean request deadline (relative to arrival, jittered like every
  /// other interval); 0 = requests carry no deadline.
  double deadline_s = 0.0;
  /// Closed-loop clients abandon a logical request after this many
  /// consecutive admission rejections (counted as LoadResult::gave_up)
  /// and move on to their next one; 0 = resubmit forever. Under shed or
  /// breaker backpressure a cap keeps the run finite by construction.
  int max_resubmits = 0;
};

struct LoadResult {
  std::uint64_t issued = 0;     ///< submit() calls (accepted)
  std::uint64_t rejected = 0;   ///< admission rejections (all classes)
  std::uint64_t completed = 0;  ///< admitted requests that terminated
  double makespan_s = 0.0;      ///< last completion on the virtual clock
  double p50_s = 0.0;           ///< solved-request latency percentiles
  double p99_s = 0.0;
  double mean_s = 0.0;
  double throughput_rps = 0.0;  ///< completed / makespan
  double hit_rate = 0.0;        ///< batch-level FactorCache hit rate
  std::uint64_t batches = 0;
  double mean_batch_cols = 0.0;
  std::map<int, std::uint64_t> tenant_completed;
  std::map<int, double> tenant_p99_s;

  // Typed terminal states of admitted requests (sums to `completed`);
  // latency percentiles above observe only `done` — a cancelled request
  // has no service latency worth averaging in.
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded = 0;  ///< of `done`: served via a recovery rung
  /// Closed-loop logical requests abandoned after max_resubmits
  /// consecutive rejections.
  std::uint64_t gave_up = 0;
  double goodput_rps = 0.0;  ///< done / makespan — the SLO throughput

  // Admission rejections by class (sums to `rejected`), and the server's
  // resilience activity during the run (deltas of ServerStats).
  std::uint64_t quota_rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t breaker_rejected = 0;
  std::uint64_t deadline_infeasible = 0;
  std::uint64_t deadline_cancelled = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t retries_denied = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t invalidations = 0;
};

/// Generate the system pool, register it with `server`, replay the load,
/// drain, and summarize. When `metrics` is non-null the per-request
/// latencies are also recorded into "service.latency.all_s" and
/// "service.latency.tenant.<id>_s" LatencyHistograms, and the cache
/// exports its gauges — the percentiles in LoadResult come from those
/// same histograms (count-based: bit-identical for any observation
/// order). When `watchdogs` is non-null the shed-storm / breaker-trip
/// detectors run once over the load's admission counters at the end.
LoadResult run_load(Server& server, const LoadOptions& opts,
                    obs::MetricsRegistry* metrics = nullptr,
                    obs::live::Watchdogs* watchdogs = nullptr);

}  // namespace ardbt::service
