#pragma once

#include <cstdint>
#include <map>

#include "src/btds/generators.hpp"
#include "src/service/server.hpp"

namespace ardbt::obs {
class MetricsRegistry;
}

/// \file loadgen.hpp
/// Deterministic closed/open-loop load generator for the service layer.
///
/// Replays a population of clients hammering a pool of cached
/// factorizations on the virtual clock. Closed loop: each client keeps
/// one request in flight, thinks for a deterministic jittered interval
/// after its completion, then issues the next — the classic
/// machine-repairman shape whose offered load self-throttles under
/// latency. Open loop: arrivals at a fixed jittered rate regardless of
/// completions — the overload shape. Both are pure functions of
/// (LoadOptions, ServerOptions, FactorCache::Options): no host clock, no
/// std::random device — a splitmix64 stream drives every choice, so two
/// runs (at any --threads) produce byte-identical results.
///
/// System popularity is a hot/cold mix: a fraction `hot_fraction` of
/// requests target the `hot` first systems of the pool uniformly; the
/// rest spread uniformly over the remainder. With the default mix the
/// batch-level cache hit rate lands well above 90% — the amortization
/// regime the service exists for.

namespace ardbt::service {

enum class Arrival {
  kClosed,  ///< fixed population, think time between requests
  kOpen,    ///< fixed arrival rate, ignores completions
};

struct LoadOptions {
  Arrival arrival = Arrival::kClosed;
  int requests = 4096;      ///< total requests to issue
  int tenants = 4;
  int clients = 64;         ///< closed-loop population
  double think_s = 2e-3;    ///< closed-loop mean think time
  double rate_rps = 50e3;   ///< open-loop arrival rate
  int pool = 8;             ///< distinct systems
  int hot = 2;              ///< hot-set size (<= pool)
  double hot_fraction = 0.9;
  la::index_t num_blocks = 96;
  la::index_t block_size = 8;
  btds::ProblemKind kind = btds::ProblemKind::kDiagDominant;
  std::uint64_t seed = 1;
  double retry_backoff_s = 1e-3;  ///< closed-loop resubmit delay after a rejection
};

struct LoadResult {
  std::uint64_t issued = 0;     ///< submit() calls (accepted)
  std::uint64_t rejected = 0;   ///< admission rejections
  std::uint64_t completed = 0;
  double makespan_s = 0.0;      ///< last completion on the virtual clock
  double p50_s = 0.0;           ///< request latency percentiles
  double p99_s = 0.0;
  double mean_s = 0.0;
  double throughput_rps = 0.0;  ///< completed / makespan
  double hit_rate = 0.0;        ///< batch-level FactorCache hit rate
  std::uint64_t batches = 0;
  double mean_batch_cols = 0.0;
  std::map<int, std::uint64_t> tenant_completed;
  std::map<int, double> tenant_p99_s;
};

/// Generate the system pool, register it with `server`, replay the load,
/// drain, and summarize. When `metrics` is non-null the per-request
/// latencies are also recorded into "service.latency.all_s" and
/// "service.latency.tenant.<id>_s" LatencyHistograms, and the cache
/// exports its gauges — the percentiles in LoadResult come from those
/// same histograms (count-based: bit-identical for any observation
/// order).
LoadResult run_load(Server& server, const LoadOptions& opts,
                    obs::MetricsRegistry* metrics = nullptr);

}  // namespace ardbt::service
