#pragma once

#include <cstdint>
#include <span>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/generators.hpp"

/// \file fingerprint.hpp
/// Matrix fingerprints — the FactorCache key (docs/SERVICE.md).
///
/// A fingerprint is a 64-bit FNV-1a digest. Two forms exist:
///
///  * fingerprint(sys): folds the shape (N, M) and every stored block's
///    raw bytes, in storage order (lower, diag, upper). Content-based, so
///    two structurally identical systems built through different code
///    paths collide on purpose — that is a cache *hit*, the whole point.
///  * fingerprint_params(kind, n, m, seed): folds the generator recipe
///    instead of the data. O(1) — the right key when the caller knows the
///    system is generator-defined and wants to skip materializing it just
///    to compute a key.
///
/// The two forms deliberately occupy distinct key spaces (a domain tag is
/// folded first) so a params key never aliases a content key. Fingerprints
/// are cache keys, not cryptographic hashes: a 64-bit digest over a
/// handful of cached systems makes accidental collision astronomically
/// unlikely, and a collision costs a wrong answer — so the service keys
/// *admission* on fingerprints but callers who need hard guarantees can
/// verify shape via Session state after acquire().

namespace ardbt::service {

/// 64-bit cache key; see file comment for the collision contract.
using Fingerprint = std::uint64_t;

/// Incremental FNV-1a 64-bit hasher (offset basis / prime per the spec).
/// Byte-order sensitive by design — fingerprints are same-machine cache
/// keys, never serialized across hosts.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<std::uint64_t>(b[i]);
      h_ *= 1099511628211ull;
    }
    return *this;
  }
  Fnv1a& u64(std::uint64_t v) { return bytes(&v, sizeof(v)); }
  Fnv1a& f64(std::span<const double> v) { return bytes(v.data(), v.size_bytes()); }

  Fingerprint digest() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

/// Content fingerprint: shape plus every stored block, in storage order.
/// Cost O(N M^2) — one pass over the matrix bytes.
Fingerprint fingerprint(const btds::BlockTridiag& sys);

/// Recipe fingerprint for generator-defined systems. O(1).
Fingerprint fingerprint_params(btds::ProblemKind kind, la::index_t num_blocks,
                               la::index_t block_size, std::uint64_t seed);

}  // namespace ardbt::service
