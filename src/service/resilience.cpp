#include "src/service/resilience.hpp"

#include "src/obs/metrics.hpp"

namespace ardbt::service {

std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDone:
      return "done";
    case Outcome::kFailed:
      return "failed";
    case Outcome::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string_view to_string(Admission admission) {
  switch (admission) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kRejectedQuota:
      return "rejected-quota";
    case Admission::kShed:
      return "shed";
    case Admission::kCircuitOpen:
      return "circuit-open";
    case Admission::kDeadlineInfeasible:
      return "deadline-infeasible";
  }
  return "unknown";
}

fault::ErrorCode admission_error(Admission admission) {
  switch (admission) {
    case Admission::kAdmitted:
      return fault::ErrorCode::kOk;
    case Admission::kRejectedQuota:
      return fault::ErrorCode::kOverload;
    case Admission::kShed:
      return fault::ErrorCode::kOverload;
    case Admission::kCircuitOpen:
      return fault::ErrorCode::kCircuitOpen;
    case Admission::kDeadlineInfeasible:
      return fault::ErrorCode::kDeadlineInfeasible;
  }
  return fault::ErrorCode::kInternal;
}

void export_resilience_metrics(const ResilienceStats& stats, obs::MetricsRegistry& reg) {
  reg.counter("service.resilience.shed").add(stats.shed);
  reg.counter("service.resilience.breaker_rejected").add(stats.breaker_rejected);
  reg.counter("service.resilience.deadline_infeasible").add(stats.deadline_infeasible);
  reg.counter("service.resilience.deadline_cancelled").add(stats.deadline_cancelled);
  reg.counter("service.resilience.failed_cols").add(stats.failed_cols);
  reg.counter("service.resilience.degraded_cols").add(stats.degraded_cols);
  reg.counter("service.resilience.retries").add(stats.retries);
  reg.counter("service.resilience.hedges").add(stats.hedges);
  reg.counter("service.resilience.retries_denied").add(stats.retries_denied);
  reg.counter("service.resilience.breaker_trips").add(stats.breaker_trips);
  reg.counter("service.resilience.invalidations").add(stats.invalidations);
  reg.counter("service.resilience.contained_batches").add(stats.contained_batches);
}

bool CircuitBreaker::allow(double now_s) {
  if (threshold_ <= 0) return true;
  if (state_ == State::kOpen) {
    if (now_s < open_until_s_) return false;
    state_ = State::kHalfOpen;
  }
  return true;
}

void CircuitBreaker::on_success() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) state_ = State::kClosed;
}

bool CircuitBreaker::on_failure(double now_s) {
  if (threshold_ <= 0) return false;
  ++consecutive_failures_;
  const bool trip = state_ == State::kHalfOpen ||
                    (state_ == State::kClosed && consecutive_failures_ >= threshold_);
  if (!trip) return false;
  state_ = State::kOpen;
  open_until_s_ = now_s + cooldown_s_;
  ++trips_;
  return true;
}

}  // namespace ardbt::service
