#include "src/service/loadgen.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "src/fault/status.hpp"
#include "src/obs/live/watchdog.hpp"
#include "src/obs/metrics.hpp"
#include "src/service/fingerprint.hpp"
#include "src/service/rng.hpp"

namespace ardbt::service {

namespace {

// splitmix64 / uniform01 / jittered — the generator's only randomness —
// live in rng.hpp, shared with the server's retry-backoff jitter and
// pinned by goldens in tests/test_resilience.cpp.

struct PoolEntry {
  Fingerprint fp = 0;
  std::shared_ptr<const btds::BlockTridiag> sys;
};

la::Matrix make_column(la::index_t rows, std::uint64_t seed) {
  la::Matrix col(rows, 1);
  std::uint64_t state = seed;
  for (la::index_t i = 0; i < rows; ++i) col(i, 0) = 2.0 * uniform01(state) - 1.0;
  return col;
}

}  // namespace

LoadResult run_load(Server& server, const LoadOptions& opts, obs::MetricsRegistry* metrics,
                    obs::live::Watchdogs* watchdogs) {
  if (opts.pool <= 0 || opts.requests <= 0 || opts.tenants <= 0) {
    throw fault::InvalidArgumentError("service::run_load",
                                      "pool, requests and tenants must be positive");
  }
  if (opts.arrival == Arrival::kClosed && opts.clients <= 0) {
    throw fault::InvalidArgumentError("service::run_load", "clients must be positive");
  }
  const int hot = std::clamp(opts.hot, 0, opts.pool);

  // Materialize the system pool once and register it; cache misses hand
  // back the pre-built shared_ptr (regeneration would be deterministic
  // too, just pointless).
  std::vector<PoolEntry> pool;
  pool.reserve(static_cast<std::size_t>(opts.pool));
  for (int i = 0; i < opts.pool; ++i) {
    auto sys = std::make_shared<const btds::BlockTridiag>(btds::make_problem(
        opts.kind, opts.num_blocks, opts.block_size, opts.seed + 7919ull * (i + 1)));
    const Fingerprint fp = fingerprint(*sys);
    server.register_system(fp, [sys] { return sys; });
    pool.push_back(PoolEntry{fp, std::move(sys)});
  }

  const FactorCache::Stats cache0 = server.cache().stats();
  const ServerStats server0 = server.stats();
  const la::index_t rows = opts.num_blocks * opts.block_size;

  auto pick_system = [&](std::uint64_t& state) -> const PoolEntry& {
    const double u = uniform01(state);
    if (hot > 0 && u < opts.hot_fraction) {
      return pool[splitmix64(state) % static_cast<std::uint64_t>(hot)];
    }
    const int cold = opts.pool - hot;
    if (cold <= 0) return pool[splitmix64(state) % static_cast<std::uint64_t>(opts.pool)];
    return pool[static_cast<std::uint64_t>(hot) +
                splitmix64(state) % static_cast<std::uint64_t>(cold)];
  };

  obs::LatencyHistogram all;
  std::map<int, obs::LatencyHistogram> per_tenant;
  LoadResult result;
  std::uint64_t next_id = 0;
  std::size_t scanned = 0;

  auto scan_completions = [&]() {
    const std::vector<Completion>& done = server.completions();
    for (; scanned < done.size(); ++scanned) {
      const Completion& c = done[scanned];
      ++result.completed;
      ++result.tenant_completed[c.tenant];
      switch (c.outcome) {
        case Outcome::kDone: {
          ++result.done;
          if (c.error != fault::ErrorCode::kOk) ++result.degraded;
          // Only solved requests contribute latency samples: a cancelled
          // or failed request has no service latency worth averaging in.
          const double lat = c.latency_s();
          all.observe(lat);
          per_tenant[c.tenant].observe(lat);
          if (metrics != nullptr) {
            metrics->latency("service.latency.all_s").observe(lat);
            metrics->latency("service.latency.tenant." + std::to_string(c.tenant) + "_s")
                .observe(lat);
          }
          break;
        }
        case Outcome::kFailed:
          ++result.failed;
          break;
        case Outcome::kDeadlineExceeded:
          ++result.deadline_exceeded;
          break;
      }
      result.makespan_s = std::max(result.makespan_s, c.finish_s);
    }
  };

  if (opts.arrival == Arrival::kClosed) {
    // Machine-repairman loop: each client keeps one request in flight.
    // Events are (time, sequence, client); the sequence number breaks
    // time ties deterministically.
    using Event = std::tuple<double, std::uint64_t, int>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> arrivals;
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> rng(static_cast<std::size_t>(opts.clients));
    std::vector<int> remaining(static_cast<std::size_t>(opts.clients));
    std::vector<int> resubmits(static_cast<std::size_t>(opts.clients), 0);
    const int base = opts.requests / opts.clients;
    for (int c = 0; c < opts.clients; ++c) {
      rng[static_cast<std::size_t>(c)] = opts.seed ^ (0xC0FFEEull + 0x9e3779b97f4a7c15ull *
                                                                        static_cast<std::uint64_t>(c + 1));
      remaining[static_cast<std::size_t>(c)] = base + (c < opts.requests % opts.clients ? 1 : 0);
    }
    auto schedule = [&](int c, double t) {
      if (remaining[static_cast<std::size_t>(c)] <= 0) return;
      --remaining[static_cast<std::size_t>(c)];
      arrivals.emplace(t, seq++, c);
    };
    for (int c = 0; c < opts.clients; ++c) {
      schedule(c, jittered(rng[static_cast<std::size_t>(c)], opts.think_s));
    }

    while (true) {
      const double t_arr = arrivals.empty() ? Server::kNever : std::get<0>(arrivals.top());
      const double t_close = server.next_close_s();
      if (t_arr >= Server::kNever && t_close >= Server::kNever) break;
      if (t_arr <= t_close) {
        const Event ev = arrivals.top();
        arrivals.pop();
        const double t = std::get<0>(ev);
        const int c = std::get<2>(ev);
        std::uint64_t& state = rng[static_cast<std::size_t>(c)];
        const PoolEntry& entry = pick_system(state);
        const std::uint64_t id = next_id++;
        Request req;
        req.id = id;
        req.tenant = c % opts.tenants;
        req.client = c;
        req.system = entry.fp;
        req.rhs = make_column(rows, opts.seed ^ (0x5eedc01ull + id * 0x9e3779b97f4a7c15ull));
        req.arrival_s = t;
        if (opts.deadline_s > 0.0) req.deadline_s = t + jittered(state, opts.deadline_s);
        if (server.try_submit(std::move(req)) == Admission::kAdmitted) {
          ++result.issued;
          resubmits[static_cast<std::size_t>(c)] = 0;
        } else {
          ++result.rejected;
          if (opts.max_resubmits > 0 &&
              ++resubmits[static_cast<std::size_t>(c)] > opts.max_resubmits) {
            // Abandon this logical request (its `remaining` slot was spent
            // when it was scheduled) and think toward the next one.
            ++result.gave_up;
            resubmits[static_cast<std::size_t>(c)] = 0;
            schedule(c, t + jittered(state, opts.think_s));
          } else {
            // Retry the same logical request after a backoff; remaining
            // was already decremented when it was scheduled.
            arrivals.emplace(t + jittered(state, opts.retry_backoff_s), seq++, c);
          }
        }
      } else {
        server.flush_next();
      }
      // New completions free clients to think and go again.
      const std::size_t before = scanned;
      scan_completions();
      const std::vector<Completion>& done = server.completions();
      for (std::size_t i = before; i < scanned; ++i) {
        const Completion& c = done[i];
        if (c.client >= 0) {
          schedule(c.client,
                   c.finish_s + jittered(rng[static_cast<std::size_t>(c.client)], opts.think_s));
        }
      }
    }
    server.drain();
    scan_completions();
  } else {
    // Open loop: jittered fixed-rate arrivals, no feedback, no retries.
    std::uint64_t state = opts.seed ^ 0x09e41009ull;
    double t = 0.0;
    for (int i = 0; i < opts.requests; ++i) {
      t += jittered(state, 1.0 / opts.rate_rps);
      const PoolEntry& entry = pick_system(state);
      const std::uint64_t id = next_id++;
      Request req;
      req.id = id;
      req.tenant = static_cast<int>(splitmix64(state) % static_cast<std::uint64_t>(opts.tenants));
      req.client = -1;
      req.system = entry.fp;
      req.rhs = make_column(rows, opts.seed ^ (0x5eedc01ull + id * 0x9e3779b97f4a7c15ull));
      req.arrival_s = t;
      if (opts.deadline_s > 0.0) req.deadline_s = t + jittered(state, opts.deadline_s);
      if (server.try_submit(std::move(req)) == Admission::kAdmitted) {
        ++result.issued;
      } else {
        ++result.rejected;  // open loop: rejections are terminal, no retry
      }
      scan_completions();
    }
    server.drain();
    scan_completions();
  }

  result.p50_s = all.percentile(0.50);
  result.p99_s = all.percentile(0.99);
  result.mean_s = all.total_count() > 0 ? all.sum() / static_cast<double>(all.total_count()) : 0.0;
  result.throughput_rps =
      result.makespan_s > 0.0 ? static_cast<double>(result.completed) / result.makespan_s : 0.0;
  for (const auto& [tenant, hist] : per_tenant) {
    result.tenant_p99_s[tenant] = hist.percentile(0.99);
  }
  const FactorCache::Stats cache1 = server.cache().stats();
  const std::uint64_t lookups = cache1.lookups - cache0.lookups;
  result.hit_rate =
      lookups > 0 ? static_cast<double>(cache1.hits - cache0.hits) / static_cast<double>(lookups)
                  : 0.0;
  const ServerStats& s1 = server.stats();
  result.batches = s1.batches - server0.batches;
  result.mean_batch_cols =
      result.batches > 0
          ? static_cast<double>(s1.batch_cols - server0.batch_cols) /
                static_cast<double>(result.batches)
          : 0.0;
  result.goodput_rps =
      result.makespan_s > 0.0 ? static_cast<double>(result.done) / result.makespan_s : 0.0;
  // Admission/resilience activity attributable to this run (deltas, so a
  // reused server reports only its own load).
  result.quota_rejected = s1.rejected - server0.rejected;
  const ResilienceStats& r0 = server0.resilience;
  const ResilienceStats& r1 = s1.resilience;
  result.shed = r1.shed - r0.shed;
  result.breaker_rejected = r1.breaker_rejected - r0.breaker_rejected;
  result.deadline_infeasible = r1.deadline_infeasible - r0.deadline_infeasible;
  result.deadline_cancelled = r1.deadline_cancelled - r0.deadline_cancelled;
  result.retries = r1.retries - r0.retries;
  result.hedges = r1.hedges - r0.hedges;
  result.retries_denied = r1.retries_denied - r0.retries_denied;
  result.breaker_trips = r1.breaker_trips - r0.breaker_trips;
  result.invalidations = r1.invalidations - r0.invalidations;
  if (metrics != nullptr) {
    server.cache().export_metrics(*metrics);
    export_resilience_metrics(r1, *metrics);
  }
  if (watchdogs != nullptr) {
    watchdogs->check_service(result.issued + result.rejected, result.shed, result.breaker_trips,
                             result.makespan_s);
  }
  return result;
}

}  // namespace ardbt::service
