// Ablation B-abl-pivot: LU vs Cholesky pivot factorization on SPD
// systems. Cholesky does ~half the pivot-factor flops and skips pivot
// searches; the solve phase is unchanged in order. Expected shape: factor
// flops drop by the pivot-factor share (~15-25% of total factor work),
// accuracy identical.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/mpsim/collectives.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 128 : 2048;
  const la::index_t r = args.smoke() ? 4 : 32;
  const int p = 4;
  bench::JsonReport report(args, "bench_abl_pivot");
  report.config("n", n).config("r", r).config("p", p).config("cost_model", engine.cost.name);

  std::printf("# B-abl-pivot: LU vs Cholesky pivots on the SPD Poisson family "
              "(N=%lld, R=%lld, P=%d)\n",
              static_cast<long long>(n), static_cast<long long>(r), p);
  bench::Table table({"M", "t_factor_lu[s]", "t_factor_chol[s]", "lu/chol", "residual_lu",
                      "residual_chol"});
  for (la::index_t m : args.smoke() ? std::vector<la::index_t>{4, 8}
                                    : std::vector<la::index_t>{4, 8, 16, 32}) {
    const auto sys = btds::make_problem(btds::ProblemKind::kPoisson2D, n, m);
    const auto b = btds::make_rhs(n, m, r);
    const btds::RowPartition part(n, p);

    double times[2] = {0.0, 0.0};
    double residuals[2] = {0.0, 0.0};
    for (int variant = 0; variant < 2; ++variant) {
      core::ArdOptions opts;
      opts.pivot = variant == 0 ? btds::PivotKind::kLu : btds::PivotKind::kCholesky;
      la::Matrix x(b.rows(), b.cols());
      mpsim::run(
          p,
          [&](mpsim::Comm& comm) {
            mpsim::barrier(comm);
            const double t0 = comm.vtime();
            const auto f = core::ArdFactorization::factor(comm, sys, part, opts);
            mpsim::barrier(comm);
            if (comm.rank() == 0) times[variant] = comm.vtime() - t0;
            f.solve(comm, b, x);
          },
          engine);
      residuals[variant] = btds::relative_residual(sys, x, b);
    }
    table.add_row({bench::fmt_int(static_cast<double>(m)), bench::fmt_sci(times[0]),
                   bench::fmt_sci(times[1]), bench::fmt(times[0] / times[1]),
                   bench::fmt_sci(residuals[0]), bench::fmt_sci(residuals[1])});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: Cholesky halves the pivot-factorization share of the\n"
              "factor phase (~7%% of the total per the flop model), so lu/chol sits a\n"
              "little above 1; residuals must match to machine precision.\n");
  return 0;
}
