// Ablation B-abl-update: incremental refactorization vs full refactor.
// Quasi-Newton time steppers change a few ranks' diagonal blocks per step;
// ArdFactorization::update lets unchanged ranks skip their segment
// factorization and corner solve. With one changed rank the critical path
// barely moves (the changed rank still does full local work), but the
// *total* work — the quantity that matters for throughput and energy, or
// when ranks interleave other computation — drops toward the ~4.5x bound
// (full local phase / modified-factor-only ratio).

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/ard.hpp"
#include "src/mpsim/collectives.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 128 : 4096;
  const la::index_t m = args.smoke() ? 8 : 16;
  bench::JsonReport report(args, "bench_abl_update");
  report.config("n", n).config("m", m).config("cost_model", engine.cost.name);

  std::printf("# B-abl-update: one-rank matrix change, update vs refactor (N=%lld, M=%lld)\n",
              static_cast<long long>(n), static_cast<long long>(m));
  bench::Table table({"P", "t_factor[s]", "t_update[s]", "flops_factor", "flops_update",
                      "work_saved"});
  for (int p : args.smoke() ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 16, 64}) {
    btds::BlockTridiag sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
    const btds::RowPartition part(n, p);
    double t_factor = 0.0;
    double t_update = 0.0;
    std::vector<double> factor_flops(static_cast<std::size_t>(p));
    std::vector<double> update_flops(static_cast<std::size_t>(p));
    mpsim::run(
        p,
        [&](mpsim::Comm& comm) {
          const auto rk = static_cast<std::size_t>(comm.rank());
          mpsim::barrier(comm);
          const double f0 = comm.stats().flops_charged;
          const double t0 = comm.vtime();
          auto f = core::ArdFactorization::factor(comm, sys, part);
          mpsim::barrier(comm);
          factor_flops[rk] = comm.stats().flops_charged - f0;
          if (comm.rank() == 0) {
            t_factor = comm.vtime() - t0;
            sys.diag(0)(0, 0) += 0.25;  // rank 0's rows change
          }
          mpsim::barrier(comm);
          const double f1 = comm.stats().flops_charged;
          const double t1 = comm.vtime();
          f.update(comm, sys, /*rows_changed=*/comm.rank() == 0);
          mpsim::barrier(comm);
          update_flops[rk] = comm.stats().flops_charged - f1;
          if (comm.rank() == 0) t_update = comm.vtime() - t1;
        },
        engine);
    double ff = 0.0;
    double uf = 0.0;
    for (int rk = 0; rk < p; ++rk) {
      ff += factor_flops[static_cast<std::size_t>(rk)];
      uf += update_flops[static_cast<std::size_t>(rk)];
    }
    table.add_row({bench::fmt_int(p), bench::fmt_sci(t_factor), bench::fmt_sci(t_update),
                   bench::fmt_sci(ff), bench::fmt_sci(uf), bench::fmt(ff / uf)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: t_update ~ t_factor (the changed rank is the critical\n"
              "path), while work_saved grows with P toward the ~4.5x local-phase bound\n"
              "(unchanged ranks keep only the boundary-modified factorization) until\n"
              "the O(M^3 log P) scan merges — which update must always redo — start to\n"
              "dominate per-rank work at large P and pull the ratio back down.\n");
  return 0;
}
