// Experiment T3: numerical accuracy. Relative residuals of every solver in
// the library across problem families and sizes — the table backing the
// formulation choice of DESIGN.md section 1.2 (two-port stays at machine
// precision; transfer-matrix RD degrades geometrically; shooting collapses
// first).

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "src/btds/cyclic_reduction.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/shooting.hpp"
#include "src/core/solver.hpp"

namespace {

using namespace ardbt;

std::string guarded_residual(const btds::BlockTridiag& sys, const la::Matrix& b,
                             const std::function<la::Matrix()>& solver) {
  try {
    const double res = btds::relative_residual(sys, solver(), b);
    if (!std::isfinite(res)) return "overflow";
    return bench::fmt_sci(res);
  } catch (const std::exception&) {
    return "fail";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int p = 4;
  const la::index_t m = 4;
  const la::index_t r = 4;
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_t3_accuracy");
  bench::LiveStream live(args);
  report.config("m", m).config("r", r).config("p", p);

  std::printf("# T3: relative residuals ||B - T X||_F / ||B||_F (M=%lld, R=%lld, P=%d)\n",
              static_cast<long long>(m), static_cast<long long>(r), p);
  for (btds::ProblemKind kind :
       {btds::ProblemKind::kDiagDominant, btds::ProblemKind::kPoisson2D,
        btds::ProblemKind::kToeplitz, btds::ProblemKind::kIllConditioned}) {
    std::printf("\n### %s\n", std::string(btds::to_string(kind)).c_str());
    bench::Table table({"N", "thomas", "cyclic_red", "ard(P=4)", "rd(P=4)", "transfer_rd",
                        "shooting"});
    for (la::index_t n : args.smoke() ? std::vector<la::index_t>{16, 64}
                                      : std::vector<la::index_t>{16, 64, 256, 1024}) {
      const auto sys = btds::make_problem(kind, n, m);
      const auto b = btds::make_rhs(n, m, r);
      table.add_row(
          {bench::fmt_int(static_cast<double>(n)),
           guarded_residual(sys, b, [&] { return btds::thomas_solve(sys, b); }),
           guarded_residual(sys, b, [&] { return btds::cyclic_reduction_solve(sys, b); }),
           guarded_residual(sys, b,
                            [&] {
                              return core::solve(core::Method::kArd, sys, b, p,
                                                 {.telemetry = live.handle()}).x;
                            }),
           guarded_residual(sys, b,
                            [&] {
                              return core::solve(core::Method::kRdBatched, sys, b, p,
                                                 {.telemetry = live.handle()}).x;
                            }),
           guarded_residual(
               sys, b,
               [&] {
                 return core::solve(core::Method::kTransferRd, sys, b, p,
                                    {.telemetry = live.handle()}).x;
               }),
           guarded_residual(sys, b, [&] { return core::shooting_solve(sys, b); })});
    }
    table.print();
    report.add_table(std::string(btds::to_string(kind)), table);
  }
  report.write();
  std::printf("\nExpected shapes: thomas / cyclic_red / ard / rd stay near machine epsilon\n"
              "at every N; transfer_rd loses ~1 digit per few rows (fail/garbage by\n"
              "N=256); shooting collapses fastest. The ill-conditioned family costs all\n"
              "solvers a few digits uniformly.\n");
  return 0;
}
