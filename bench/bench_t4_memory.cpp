// Experiment T4 (extension): factored-state memory. ARD caches one
// boundary-reduced level (O(M^2 N/P) per rank, plus O(M^2 log P) of scan
// caches); accelerated PCR must cache every one of its ceil(log2 N)
// levels. This table quantifies the memory side of the F6 trade-off.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/ard.hpp"
#include "src/core/pcr.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_t4_memory");
  std::printf("# T4: factored-state bytes per rank (rank 0)\n");
  bench::Table table({"N", "M", "P", "ard_MB", "pcr_MB", "pcr/ard", "log2N"});

  struct Config {
    la::index_t n, m;
    int p;
  };
  const std::vector<Config> configs =
      args.smoke() ? std::vector<Config>{{64, 4, 2}, {128, 8, 4}}
                   : std::vector<Config>{{512, 8, 4},   {2048, 8, 4},  {8192, 8, 4},
                                         {2048, 16, 4}, {2048, 32, 4}, {2048, 16, 16}};
  for (const Config& c : configs) {
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, c.n, c.m);
    const btds::RowPartition part(c.n, c.p);
    std::size_t ard_bytes = 0;
    std::size_t pcr_bytes = 0;
    mpsim::run(c.p, [&](mpsim::Comm& comm) {
      const auto fa = core::ArdFactorization::factor(comm, sys, part);
      const auto fp = core::PcrFactorization::factor(comm, sys, part);
      if (comm.rank() == 0) {
        ard_bytes = fa.storage_bytes();
        pcr_bytes = fp.storage_bytes();
      }
    });
    double log2n = 0;
    for (la::index_t s = 1; s < c.n; s *= 2) log2n += 1;
    table.add_row({bench::fmt_int(static_cast<double>(c.n)),
                   bench::fmt_int(static_cast<double>(c.m)), bench::fmt_int(c.p),
                   bench::fmt(static_cast<double>(ard_bytes) / 1e6),
                   bench::fmt(static_cast<double>(pcr_bytes) / 1e6),
                   bench::fmt(static_cast<double>(pcr_bytes) / static_cast<double>(ard_bytes)),
                   bench::fmt_int(log2n)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: ard_MB ~ 6 M^2 (N/P) doubles; pcr/ard tracks ~log2 N\n"
              "times a small constant; both scale with M^2 and 1/P.\n");
  return 0;
}
