// Experiment F5: crossover against the sequential baselines. At P = 1 the
// prefix solvers pay a constant-factor overhead over block Thomas (and
// sequential cyclic reduction); recursive doubling wins once P covers that
// overhead. This bench locates the crossover and shows ARD crossing
// earlier than single-shot RD for multi-RHS workloads.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/btds/cyclic_reduction.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/perfmodel.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 64 : 2048;
  const la::index_t m = 8;
  const la::index_t r = args.smoke() ? 4 : 32;
  const int p_max = args.smoke() ? 4 : 256;
  bench::JsonReport report(args, "bench_f5_crossover");
  bench::LiveStream live(args);
  report.config("n", n).config("m", m).config("r", r).config("cost_model", engine.cost.name);
  const core::PerfModel model(engine.cost);

  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, r);

  // Sequential baselines, modeled at the same calibrated flop rate so the
  // comparison is machine-consistent (their virtual P is always 1).
  const double t_thomas = model.thomas_seconds(n, m, r);
  const double t_bcr = btds::cyclic_reduction_flops(n, m, r) / engine.cost.flop_rate;

  std::printf("# F5: crossover vs sequential baselines, N=%lld M=%lld R=%lld\n",
              static_cast<long long>(n), static_cast<long long>(m), static_cast<long long>(r));
  std::printf("block Thomas (P=1): %.4gs   cyclic reduction (P=1): %.4gs\n\n", t_thomas, t_bcr);

  bench::Table table({"P", "t_ard[s]", "t_rd[s]", "ard/thomas", "rd/thomas"});
  int ard_crossover = -1;
  int rd_crossover = -1;
  for (int p = 1; p <= p_max; p *= 2) {
    const auto ard = core::solve(core::Method::kArd, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    const auto rd = core::solve(core::Method::kRdBatched, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    const double t_ard = ard.factor_vtime + ard.solve_vtime;
    const double t_rd = rd.solve_vtime;
    if (ard_crossover < 0 && t_ard < t_thomas) ard_crossover = p;
    if (rd_crossover < 0 && t_rd < t_thomas) rd_crossover = p;
    table.add_row({bench::fmt_int(p), bench::fmt_sci(t_ard), bench::fmt_sci(t_rd),
                   bench::fmt(t_ard / t_thomas), bench::fmt(t_rd / t_thomas)});
  }
  table.print();
  report.add_table("main", table);
  obs::Json crossover = obs::Json::object();
  crossover.set("thomas_seconds", t_thomas);
  crossover.set("cyclic_reduction_seconds", t_bcr);
  crossover.set("ard_crossover_p", ard_crossover);
  crossover.set("rd_crossover_p", rd_crossover);
  report.set_section("crossover", std::move(crossover));
  report.write();
  std::printf("\nCrossover (first P beating sequential Thomas): ARD at P=%d, RD at P=%d.\n"
              "Expected shapes: both overhead ratios start > 1 at P=1 and fall below 1\n"
              "within a few ranks; ARD crosses at the same or earlier P than RD.\n",
              ard_crossover, rd_crossover);
  return 0;
}
