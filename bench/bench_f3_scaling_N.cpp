// Experiment F3: runtime versus problem size N at fixed P, M, R. Expected
// shape: linear in N for both phases once N/P dominates the log P term;
// the ARD-vs-RD ratio is N-independent.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = ardbt::bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t m = 16;
  const la::index_t r = args.smoke() ? 8 : 64;
  const int p = args.smoke() ? 4 : 16;
  bench::JsonReport report(args, "bench_f3_scaling_N");
  bench::LiveStream live(args);
  report.config("m", m).config("r", r).config("p", p).config("cost_model", engine.cost.name);

  std::printf("# F3: runtime vs N (M=%lld, R=%lld, P=%d)\n", static_cast<long long>(m),
              static_cast<long long>(r), p);
  bench::Table table(
      {"N", "t_factor[s]", "t_solve[s]", "t_ard[s]", "t/N [us]", "rd_per_rhs/ard"});
  for (la::index_t n : args.smoke()
                           ? std::vector<la::index_t>{32, 64}
                           : std::vector<la::index_t>{256, 512, 1024, 2048, 4096, 8192,
                                                      16384}) {
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
    const auto b = btds::make_rhs(n, m, r);
    const auto res = core::solve(core::Method::kArd, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    const double t_ard = res.factor_vtime + res.solve_vtime;
    const double t_rd_per_rhs =
        static_cast<double>(r) * (res.factor_vtime + res.solve_vtime / static_cast<double>(r));
    table.add_row({bench::fmt_int(static_cast<double>(n)), bench::fmt_sci(res.factor_vtime),
                   bench::fmt_sci(res.solve_vtime), bench::fmt_sci(t_ard),
                   bench::fmt(1e6 * t_ard / static_cast<double>(n)),
                   bench::fmt(t_rd_per_rhs / t_ard)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: t/N approaches a constant as N grows (the log P term\n"
              "amortizes away); the last column is nearly N-independent.\n");
  return 0;
}
