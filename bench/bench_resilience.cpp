// Resilience benchmark (docs/ROBUSTNESS.md "Service resilience"): replays
// the deterministic multi-tenant request stream of bench_service against a
// server whose engine carries an escalating injected-fault plan, and
// reports goodput and p99 as a function of the fault count with hedged
// retries off and on. The question the tables answer: how much offered
// chaos can the retry/containment layer absorb before the SLO throughput
// (goodput = done/makespan) dents, and what does the hedge buy on the tail?
//
// Everything is virtual-clock (charged-flops timing, uncalibrated 2014
// cluster profile) and splitmix64-seeded, so the tables — and the
// committed BENCH_resilience.json history line — are bit-identical across
// reruns and --threads values; the binary enforces that with an in-process
// replay check on a faulted configuration.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/fault/plan.hpp"
#include "src/obs/metrics.hpp"
#include "src/service/factor_cache.hpp"
#include "src/service/loadgen.hpp"
#include "src/service/server.hpp"

namespace {

using namespace ardbt;

struct Shape {
  la::index_t n = 96;
  la::index_t m = 8;
  int p = 4;
  int requests = 1536;
  int clients = 24;
  int tenants = 3;
  int pool = 2;
  int hot = 1;
  la::index_t max_batch = 16;
  double think_s = 1e-3;
  double rate_rps = 50e3;
};

struct RunKnobs {
  int faults = 0;  ///< chained_plan size (0 = fault-free engine)
  service::ResilienceOptions resilience;
  service::Arrival arrival = service::Arrival::kClosed;
  double deadline_s = 0.0;
  double window_s = 2e-3;
};

/// Chained burst: faults sit at increasing send ordinals, so an aborted
/// attempt leaves the higher ordinals un-fired for the *next* engine run —
/// crashes and flips land on successive retry attempts and successive
/// batches instead of all collapsing into the first run (FaultPlan specs
/// are one-shot and ordinals reset per run). Depth scales with `count`:
/// small bursts are absorbed as retries, deep ones exhaust attempts and
/// fail batches, and the delay/straggle faults stretch the tail.
fault::FaultPlan chained_plan(int count, int nranks) {
  fault::FaultPlan plan;
  for (int j = 0; j < count; ++j) {
    const int rank = j % nranks;
    const auto ord = static_cast<std::uint64_t>(2 + 3 * (j / nranks));
    switch (j % 4) {
      case 0: plan.crash_before_send(rank, ord); break;
      case 1: plan.flip_bit(rank, ord, static_cast<std::uint64_t>(17 * (j + 1)) % 512); break;
      case 2: plan.delay_message(rank, ord, 2e-4); break;
      default: plan.straggle(rank, ord, 2e-4); break;
    }
  }
  return plan;
}

service::LoadResult run_one(const Shape& shape, const RunKnobs& knobs,
                            core::SessionConfig session) {
  // Fresh plan per run: one-shot `fired` flags persist across engine runs
  // sharing a plan, so reusing one would leave reruns fault-free.
  fault::FaultPlan plan;
  if (knobs.faults > 0) {
    plan = chained_plan(knobs.faults, shape.p);
    session.engine.fault_plan = &plan;
    session.engine.recv_timeout_wall = 10.0;  // hang backstop, never the detector
  }

  service::FactorCache::Options copts;
  copts.method = core::Method::kArd;
  copts.nranks = shape.p;
  copts.session = session;
  service::FactorCache cache(copts);

  service::ServerOptions sopts;
  sopts.window_s = knobs.window_s;
  sopts.max_batch_cols = shape.max_batch;
  sopts.resilience = knobs.resilience;
  service::Server server(cache, sopts);

  service::LoadOptions lopts;
  lopts.arrival = knobs.arrival;
  lopts.requests = shape.requests;
  lopts.tenants = shape.tenants;
  lopts.clients = shape.clients;
  lopts.think_s = shape.think_s;
  lopts.rate_rps = shape.rate_rps;
  lopts.pool = shape.pool;
  lopts.hot = shape.hot;
  lopts.num_blocks = shape.n;
  lopts.block_size = shape.m;
  lopts.seed = 1;
  lopts.deadline_s = knobs.deadline_s;
  lopts.max_resubmits = 4;
  return service::run_load(server, lopts);
}

bool same_result(const service::LoadResult& a, const service::LoadResult& b) {
  return a.issued == b.issued && a.rejected == b.rejected && a.completed == b.completed &&
         a.done == b.done && a.failed == b.failed &&
         a.deadline_exceeded == b.deadline_exceeded && a.retries == b.retries &&
         a.hedges == b.hedges && a.shed == b.shed && a.gave_up == b.gave_up &&
         a.makespan_s == b.makespan_s && a.p99_s == b.p99_s &&
         a.goodput_rps == b.goodput_rps;
}

std::vector<std::string> chaos_row(const std::string& key, const service::LoadResult& r) {
  return {key,
          bench::fmt_int(static_cast<double>(r.done)),
          bench::fmt_int(static_cast<double>(r.failed)),
          bench::fmt_int(static_cast<double>(r.retries)),
          bench::fmt_int(static_cast<double>(r.hedges)),
          bench::fmt_sci(r.p99_s),
          bench::fmt_int(r.goodput_rps)};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_resilience");

  // Uncalibrated deterministic profile, same contract as bench_service:
  // the committed history line must be bit-identical on any host.
  mpsim::EngineOptions engine;
  engine.cost = mpsim::CostModel::cluster2014();
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.threads_per_rank = args.threads();

  Shape shape;
  if (args.smoke()) {
    shape.n = 48;
    shape.requests = 384;
    shape.clients = 12;
  }
  const std::vector<int> fault_counts = {0, 4, 16, 64};

  core::SessionConfig session;
  session.engine = engine;

  // No "threads" key, as in bench_service: perf_gate refuses to compare
  // runs whose configs differ and the report is --threads-invariant.
  report.config("n", shape.n)
      .config("m", shape.m)
      .config("p", shape.p)
      .config("requests", shape.requests)
      .config("clients", shape.clients)
      .config("tenants", shape.tenants)
      .config("pool", shape.pool)
      .config("hot", shape.hot)
      .config("max_batch", shape.max_batch)
      .config("think_s", shape.think_s)
      .config("cost_model", engine.cost.name)
      .config("mode", args.smoke() ? "smoke" : "full");

  std::printf("# resilience: N=%lld M=%lld P=%d, %d requests, %d clients, %d tenants, "
              "retries=2, budget ratio=0.1\n",
              static_cast<long long>(shape.n), static_cast<long long>(shape.m), shape.p,
              shape.requests, shape.clients, shape.tenants);

  const std::vector<std::string> headers = {"faults", "done",   "failed",  "retries",
                                            "hedged", "p99[s]", "goodput[rps]"};

  // --- Goodput/p99 vs injected-fault count, hedge off vs on. -----------
  for (bool hedge : {false, true}) {
    std::printf("\n## chaos sweep (hedge=%s)\n", hedge ? "on" : "off");
    bench::Table table(headers);
    for (int faults : fault_counts) {
      RunKnobs knobs;
      knobs.faults = faults;
      knobs.resilience.max_retries = 2;
      knobs.resilience.hedge = hedge;
      const service::LoadResult r = run_one(shape, knobs, session);
      if (faults == 0 && (r.failed != 0 || r.retries != 0)) {
        std::fprintf(stderr, "bench_resilience: FAIL: fault-free run reported failures "
                             "(failed=%llu retries=%llu)\n",
                     static_cast<unsigned long long>(r.failed),
                     static_cast<unsigned long long>(r.retries));
        return 1;
      }
      table.add_row(chaos_row(bench::fmt_int(faults), r));
    }
    table.print();
    report.add_table(hedge ? "chaos_hedge_on" : "chaos_hedge_off", table);
  }

  // --- Replay check on a faulted shape: chaos must be bit-stable. ------
  {
    RunKnobs knobs;
    knobs.faults = 16;
    knobs.resilience.max_retries = 2;
    knobs.resilience.hedge = true;
    const service::LoadResult a = run_one(shape, knobs, session);
    const service::LoadResult b = run_one(shape, knobs, session);
    if (!same_result(a, b)) {
      std::fprintf(stderr, "bench_resilience: FAIL: faulted replay diverged (retry/hedge "
                           "decisions leaked host state)\n");
      std::fprintf(stderr,
                   "a: done=%llu failed=%llu dl=%llu retries=%llu hedges=%llu shed=%llu "
                   "gave_up=%llu makespan=%.17g p99=%.17g\n"
                   "b: done=%llu failed=%llu dl=%llu retries=%llu hedges=%llu shed=%llu "
                   "gave_up=%llu makespan=%.17g p99=%.17g\n",
                   (unsigned long long)a.done, (unsigned long long)a.failed,
                   (unsigned long long)a.deadline_exceeded, (unsigned long long)a.retries,
                   (unsigned long long)a.hedges, (unsigned long long)a.shed,
                   (unsigned long long)a.gave_up, a.makespan_s, a.p99_s,
                   (unsigned long long)b.done, (unsigned long long)b.failed,
                   (unsigned long long)b.deadline_exceeded, (unsigned long long)b.retries,
                   (unsigned long long)b.hedges, (unsigned long long)b.shed,
                   (unsigned long long)b.gave_up, b.makespan_s, b.p99_s);
      return 1;
    }
    std::printf("\nreplay check: two fresh faulted runs byte-identical: yes\n");
    report.set_section("replay_identical", obs::Json(true));
  }

  // --- Overload: open-loop arrivals with shedding off vs on. -----------
  // An arrival flood far past service capacity with a tight batching
  // window, no deadlines: every admitted request is eventually served, so
  // without admission control the executor backlog — and with it the tail
  // latency — grows with the flood. The backlog bound converts the excess
  // into admission-time rejections and caps p99 at roughly the bound.
  const double overload_rps = 5e6;
  std::printf("\n## overload (open loop, rate=%.0f rps, window=1e-4 s, no deadline)\n",
              overload_rps);
  bench::Table overload({"shedding", "done", "shed", "p50[s]", "p99[s]", "goodput[rps]"});
  for (bool shed : {false, true}) {
    RunKnobs knobs;
    knobs.arrival = service::Arrival::kOpen;
    knobs.window_s = 1e-4;
    if (shed) {
      knobs.resilience.shed_backlog_s = 2e-4;
    }
    Shape oshape = shape;
    oshape.rate_rps = overload_rps;
    const service::LoadResult r = run_one(oshape, knobs, session);
    overload.add_row({shed ? "on" : "off",
                      bench::fmt_int(static_cast<double>(r.done)),
                      bench::fmt_int(static_cast<double>(r.shed)),
                      bench::fmt_sci(r.p50_s),
                      bench::fmt_sci(r.p99_s),
                      bench::fmt_int(r.goodput_rps)});
  }
  overload.print();
  report.add_table("overload", overload);

  report.write();

  std::printf("\nExpected shapes: goodput holds near the fault-free line while the\n"
              "fault count stays within the retry budget (transients are absorbed as\n"
              "retries), then dents as crashes exhaust attempts and columns fail; the\n"
              "hedged columns trade a few extra attempts for a flatter p99 under\n"
              "faults; under the open-loop flood, shedding trades completions for a\n"
              "bounded executor backlog — the admitted requests keep a flat p99 near\n"
              "the backlog bound instead of queueing behind the whole flood.\n");
  return 0;
}
