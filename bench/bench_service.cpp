// Service-layer load benchmark (docs/SERVICE.md): replays a deterministic
// multi-tenant request stream against the FactorCache + batching Server
// front-end and reports p50/p99 latency and throughput as a function of
// the batching window, plus tenant-fairness and eviction-pressure
// sections. Everything is virtual-clock: the tables — and the committed
// BENCH_service.json history line — are bit-identical across reruns and
// --threads values, which the binary itself enforces with an in-process
// replay check (exit 1 on any divergence, like bench_abl_smallblock's
// bit-identity abort).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/obs/metrics.hpp"
#include "src/service/factor_cache.hpp"
#include "src/service/loadgen.hpp"
#include "src/service/server.hpp"

namespace {

using namespace ardbt;

/// One load run's result plus the cache-side counters the tables need.
struct RunOutput {
  service::LoadResult load;
  service::FactorCache::Stats cache;
  std::size_t cache_entries = 0;
  std::size_t resident_bytes = 0;
};

struct Shape {
  la::index_t n = 96;
  la::index_t m = 8;
  int p = 4;
  int requests = 4096;
  int clients = 64;
  int tenants = 4;
  int pool = 8;
  int hot = 2;
  la::index_t max_batch = 32;
  double think_s = 2e-3;
  double rate_rps = 50e3;
};

struct RunKnobs {
  double window_s = 2e-3;
  service::Arrival arrival = service::Arrival::kClosed;
  std::size_t byte_budget = 0;
  int tenant_queue_quota = 0;
  la::index_t tenant_batch_share = 0;
};

RunOutput run_one(const Shape& shape, const RunKnobs& knobs, const core::SessionConfig& session,
                  obs::MetricsRegistry* metrics) {
  service::FactorCache::Options copts;
  copts.method = core::Method::kArd;
  copts.nranks = shape.p;
  copts.byte_budget = knobs.byte_budget;
  copts.session = session;
  service::FactorCache cache(copts);

  service::ServerOptions sopts;
  sopts.window_s = knobs.window_s;
  sopts.max_batch_cols = shape.max_batch;
  sopts.tenant_queue_quota = knobs.tenant_queue_quota;
  sopts.tenant_batch_share = knobs.tenant_batch_share;
  service::Server server(cache, sopts);

  service::LoadOptions lopts;
  lopts.arrival = knobs.arrival;
  lopts.requests = shape.requests;
  lopts.tenants = shape.tenants;
  lopts.clients = shape.clients;
  lopts.think_s = shape.think_s;
  lopts.rate_rps = shape.rate_rps;
  lopts.pool = shape.pool;
  lopts.hot = shape.hot;
  lopts.num_blocks = shape.n;
  lopts.block_size = shape.m;
  lopts.seed = 1;

  RunOutput out;
  out.load = service::run_load(server, lopts, metrics);
  out.cache = cache.stats();
  out.cache_entries = cache.size();
  out.resident_bytes = cache.resident_bytes();
  return out;
}

bool same_result(const service::LoadResult& a, const service::LoadResult& b) {
  return a.issued == b.issued && a.rejected == b.rejected && a.completed == b.completed &&
         a.makespan_s == b.makespan_s && a.p50_s == b.p50_s && a.p99_s == b.p99_s &&
         a.mean_s == b.mean_s && a.throughput_rps == b.throughput_rps &&
         a.hit_rate == b.hit_rate && a.batches == b.batches &&
         a.mean_batch_cols == b.mean_batch_cols && a.tenant_completed == b.tenant_completed &&
         a.tenant_p99_s == b.tenant_p99_s;
}

std::vector<std::string> load_row(const std::string& key, const RunOutput& out) {
  return {key,
          bench::fmt_int(static_cast<double>(out.load.completed)),
          bench::fmt_int(static_cast<double>(out.load.batches)),
          bench::fmt(out.load.mean_batch_cols),
          bench::fmt(out.load.hit_rate, "%.4f"),
          bench::fmt_sci(out.load.p50_s),
          bench::fmt_sci(out.load.p99_s),
          bench::fmt_int(out.load.throughput_rps)};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_service");
  bench::LiveStream live(args);

  // Deterministic engine: the *uncalibrated* 2014 cluster profile under
  // charged-flops timing. bench::virtual_engine() calibrates the flop
  // rate against the host, which is right for the paper-figure benches
  // but would make the committed BENCH_service.json vary run to run; this
  // benchmark's contract is bit-identity.
  mpsim::EngineOptions engine;
  engine.cost = mpsim::CostModel::cluster2014();
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.threads_per_rank = args.threads();

  Shape shape;
  if (args.smoke()) {
    shape.n = 48;
    shape.m = 4;
    shape.requests = 512;
    shape.clients = 16;
    shape.pool = 2;
    shape.hot = 1;
    shape.max_batch = 16;
    shape.rate_rps = 20e3;
  }
  const std::vector<double> windows = {0.0, 5e-4, 2e-3, 8e-3};

  core::SessionConfig session;
  session.engine = engine;
  session.telemetry = live.handle();

  // Deliberately no "threads" key: the report must be byte-identical for
  // any --threads value (charged timing), and perf_gate refuses to
  // compare runs whose configs differ.
  report.config("n", shape.n)
      .config("m", shape.m)
      .config("p", shape.p)
      .config("requests", shape.requests)
      .config("clients", shape.clients)
      .config("tenants", shape.tenants)
      .config("pool", shape.pool)
      .config("hot", shape.hot)
      .config("max_batch", shape.max_batch)
      .config("think_s", shape.think_s)
      .config("rate_rps", shape.rate_rps)
      .config("cost_model", engine.cost.name)
      .config("mode", args.smoke() ? "smoke" : "full");

  std::printf("# service: N=%lld M=%lld P=%d, %d requests, %d clients, %d tenants, pool=%d "
              "(hot=%d), max_batch=%lld\n",
              static_cast<long long>(shape.n), static_cast<long long>(shape.m), shape.p,
              shape.requests, shape.clients, shape.tenants, shape.pool, shape.hot,
              static_cast<long long>(shape.max_batch));

  const std::vector<std::string> headers = {"window",  "completed", "batches", "mean_cols",
                                            "hit_rate", "p50[s]",    "p99[s]",  "thr[rps]"};

  // --- Closed loop: throughput/latency vs batching window. -------------
  std::printf("\n## closed loop (think=%.0e s)\n", shape.think_s);
  bench::Table closed(headers);
  obs::MetricsRegistry metrics;  // latency histograms of the default-window run
  for (double w : windows) {
    RunKnobs knobs;
    knobs.window_s = w;
    const bool is_default = w == 2e-3;
    const RunOutput out = run_one(shape, knobs, session, is_default ? &metrics : nullptr);
    if (out.load.hit_rate <= 0.9) {
      std::fprintf(stderr,
                   "bench_service: FAIL: closed-loop hit rate %.4f <= 0.9 at window %g "
                   "(default tenant mix must stay cache-friendly)\n",
                   out.load.hit_rate, w);
      return 1;
    }
    closed.add_row(load_row(bench::fmt_sci(w), out));
  }
  closed.print();
  report.add_table("closed_loop", closed);

  // --- Replay check: the whole pipeline must be bit-stable. ------------
  {
    RunKnobs knobs;
    knobs.window_s = 5e-4;
    const RunOutput a = run_one(shape, knobs, session, nullptr);
    const RunOutput b = run_one(shape, knobs, session, nullptr);
    if (!same_result(a.load, b.load)) {
      std::fprintf(stderr, "bench_service: FAIL: replay diverged (virtual clock leaked "
                           "host state into the service pipeline)\n");
      return 1;
    }
    std::printf("\nreplay check: two fresh runs byte-identical: yes\n");
    report.set_section("replay_identical", obs::Json(true));
  }

  // --- Open loop: fixed-rate arrivals, no feedback. --------------------
  std::printf("\n## open loop (rate=%.0f rps)\n", shape.rate_rps);
  bench::Table open_loop(headers);
  for (double w : windows) {
    RunKnobs knobs;
    knobs.window_s = w;
    knobs.arrival = service::Arrival::kOpen;
    const RunOutput out = run_one(shape, knobs, session, nullptr);
    open_loop.add_row(load_row(bench::fmt_sci(w), out));
  }
  open_loop.print();
  report.add_table("open_loop", open_loop);

  // --- Tenant fairness: quotas + per-batch round-robin shares. ---------
  std::printf("\n## tenants (window=2e-3, queue_quota=8, batch_share=max_batch/tenants)\n");
  bench::Table tenants({"tenant", "completed", "p99[s]"});
  {
    RunKnobs knobs;
    knobs.window_s = 2e-3;
    knobs.tenant_queue_quota = 8;
    knobs.tenant_batch_share = shape.max_batch / shape.tenants;
    const RunOutput out = run_one(shape, knobs, session, nullptr);
    for (const auto& [tenant, completed] : out.load.tenant_completed) {
      tenants.add_row({bench::fmt_int(tenant),
                       bench::fmt_int(static_cast<double>(completed)),
                       bench::fmt_sci(out.load.tenant_p99_s.at(tenant))});
    }
    std::printf("rejected (admission quota): %llu\n",
                static_cast<unsigned long long>(out.load.rejected));
    report.config("fairness_rejected", static_cast<double>(out.load.rejected));
  }
  tenants.print();
  report.add_table("tenants", tenants);

  // --- Eviction pressure: halve the byte budget, watch the hit rate. ---
  std::printf("\n## eviction (budget derived from the unbudgeted resident set)\n");
  bench::Table eviction({"budget", "entries", "evictions", "hit_rate", "p99[s]"});
  {
    RunKnobs knobs;
    knobs.window_s = 2e-3;
    const RunOutput full = run_one(shape, knobs, session, nullptr);
    eviction.add_row({"unlimited", bench::fmt_int(static_cast<double>(full.cache_entries)),
                      bench::fmt_int(static_cast<double>(full.cache.evictions)),
                      bench::fmt(full.load.hit_rate, "%.4f"), bench::fmt_sci(full.load.p99_s)});
    knobs.byte_budget = full.resident_bytes / 2 + 1;
    const RunOutput half = run_one(shape, knobs, session, nullptr);
    eviction.add_row({"half", bench::fmt_int(static_cast<double>(half.cache_entries)),
                      bench::fmt_int(static_cast<double>(half.cache.evictions)),
                      bench::fmt(half.load.hit_rate, "%.4f"), bench::fmt_sci(half.load.p99_s)});
    if (knobs.byte_budget > 0 && half.resident_bytes > knobs.byte_budget &&
        half.cache_entries > 1) {
      std::fprintf(stderr, "bench_service: FAIL: cache over budget after the run\n");
      return 1;
    }
  }
  eviction.print();
  report.add_table("eviction", eviction);

  // Deterministic latency histograms of the default-window run (virtual
  // clock only — safe for the bit-identical history contract).
  report.set_section("metrics", obs::deterministic_metrics(metrics.to_json()));
  report.write();
  live.close();

  std::printf("\nExpected shapes: p50 tracks the window (requests wait for the batch to\n"
              "close) and mean_cols grows with it — the amortization lever; the closed\n"
              "loop trades throughput for batching (clients block while batches fill)\n"
              "while the open loop holds its offered rate with ever fewer, fatter\n"
              "batches; the hit rate stays >90%% under the hot/cold mix; halving the\n"
              "budget forces evictions and dents the hit rate without breaking any\n"
              "solve.\n");
  return 0;
}
