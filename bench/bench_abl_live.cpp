// Ablation B-abl-live: wall-clock cost of the live-telemetry chain on a
// chained factor-once / solve-many session, in three configurations:
//   absent    — no telemetry installed (the seed baseline);
//   disabled  — flight recorder attached but switched off: the engine's
//               comm taps pay exactly one pointer test per operation and
//               the driver hooks drop their records (the zero-cost
//               contract a service binary relies on to leave telemetry
//               compiled in);
//   enabled   — the full chain: recorder, structured log, snapshotter on
//               a virtual-clock cadence, watchdogs (in-memory sink).
//
// The recorder never touches the virtual clock, so solutions AND modeled
// solve vtimes must be bit-identical across all three configurations —
// the run aborts if they ever differ. The headline number is the
// disabled-vs-absent per-solve overhead: it must sit below the perf
// gate's measurement noise floor (perf_gate.py --min-seconds, 1e-5 s),
// which is what lets the recorder ship always-on.
//
// Timings are host wall-clock, best of `reps` (mpsim virtual time charges
// identical flops in every configuration, so it cannot see the overhead).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"
#include "src/obs/live/telemetry.hpp"

namespace {

using namespace ardbt;

bool bitwise_equal(const la::Matrix& a, const la::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (la::index_t i = 0; i < a.rows(); ++i) {
    for (la::index_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

struct ConfigResult {
  double t_solves = 1e300;  ///< best-of-reps wall seconds for the S solves
  la::Matrix x;             ///< final solution
  std::vector<double> solve_vtimes;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_abl_live");

  const la::index_t n = args.smoke() ? 32 : 128;
  const la::index_t m = args.smoke() ? 4 : 8;
  const la::index_t r = args.smoke() ? 4 : 8;
  const int p = 4;
  const int solves = args.smoke() ? 16 : 64;
  const int reps = args.smoke() ? 3 : 5;
  report.config("n", n).config("m", m).config("r", r).config("p", p)
      .config("solves", solves).config("reps", reps)
      .config("mode", args.smoke() ? "smoke" : "full");

  const auto engine = bench::virtual_engine();
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const la::Matrix b = btds::make_rhs(n, m, r, /*seed=*/3);

  std::printf("# B-abl-live: chained session (%d solves), telemetry absent vs disabled vs on\n",
              solves);
  std::printf("# wall-clock, best of %d; bit-identical solutions and vtimes required\n", reps);

  const char* kConfigs[3] = {"absent", "disabled", "enabled"};
  ConfigResult results[3];
  for (int cfg = 0; cfg < 3; ++cfg) {
    // Owners must outlive the sessions of every rep.
    obs::live::FlightRecorder disabled_recorder;
    disabled_recorder.set_enabled(false);
    obs::MetricsRegistry registry;
    obs::live::LiveTelemetry::Options live_opts;
    live_opts.snapshot.period_s = 1e-5;  // a few snapshots per rep at this shape
    obs::live::LiveTelemetry full(std::move(live_opts), &registry);

    for (int rep = 0; rep < reps; ++rep) {
      core::Session session(core::Method::kArd, sys, p, {.engine = engine});
      if (cfg == 1) {
        obs::live::Telemetry t;
        t.recorder = &disabled_recorder;
        session.set_telemetry(t);
      } else if (cfg == 2) {
        session.set_telemetry(full.handle());
      }
      session.factor();
      session.solve(b);  // warm the arena: steady-state solves from here on
      const bench::WallTimer timer;
      for (int s = 0; s < solves; ++s) (void)session.solve(b);
      const double t = timer.seconds();
      if (t < results[cfg].t_solves) results[cfg].t_solves = t;
      if (rep == 0) {
        results[cfg].x = session.solve(b);
        results[cfg].solve_vtimes = session.solve_vtimes();
      }
    }
  }

  bench::Table table({"config", "t_solves[s]", "per_solve[s]", "overhead_vs_absent[s]",
                      "x_identical", "vtimes_identical"});
  bool all_identical = true;
  for (int cfg = 0; cfg < 3; ++cfg) {
    const bool x_ok = bitwise_equal(results[cfg].x, results[0].x);
    const bool v_ok = results[cfg].solve_vtimes == results[0].solve_vtimes;
    all_identical = all_identical && x_ok && v_ok;
    const double per_solve = results[cfg].t_solves / solves;
    const double overhead = (results[cfg].t_solves - results[0].t_solves) / solves;
    table.add_row({kConfigs[cfg], bench::fmt_sci(results[cfg].t_solves),
                   bench::fmt_sci(per_solve), cfg == 0 ? "-" : bench::fmt_sci(overhead),
                   x_ok ? "yes" : "NO", v_ok ? "yes" : "NO"});
  }
  table.print();

  const double disabled_overhead = (results[1].t_solves - results[0].t_solves) / solves;
  const double kNoiseFloor = 1e-5;  // perf_gate.py --min-seconds default
  report.add_table("main", table);
  report.set_section("identical", obs::Json(all_identical));
  report.set_section("disabled_overhead_per_solve_s", obs::Json(disabled_overhead));
  report.set_section("noise_floor_s", obs::Json(kNoiseFloor));
  report.set_section("below_noise_floor", obs::Json(disabled_overhead < kNoiseFloor));
  report.write();

  if (!all_identical) {
    std::fprintf(stderr, "bench_abl_live: FAIL: telemetry changed the solution or vtime bits\n");
    return 1;
  }
  std::printf("\nExpected shapes: disabled overhead per solve %s the %.0e s perf-gate noise\n"
              "floor (measured %.2e s); identical solutions and vtimes in every config\n"
              "(the recorder never reads or charges the virtual clock).\n",
              disabled_overhead < kNoiseFloor ? "below" : "ABOVE", kNoiseFloor,
              disabled_overhead);
  return 0;
}
