// Ablation B-abl-batch: sensitivity to right-hand-side arrival pattern.
// R_total right-hand sides arrive in k batches (k = 1 is the fully
// batched case, k = R_total the fully sequential/time-stepping case).
// ARD factors once regardless of k; classic RD re-factors per batch, so
// its cost grows with k while ARD's stays flat.

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 64 : 1024;
  const la::index_t m = args.smoke() ? 8 : 16;
  const la::index_t r_total = args.smoke() ? 16 : 256;
  const int p = 4;
  bench::JsonReport report(args, "bench_abl_batching");
  bench::LiveStream live(args);
  report.config("n", n).config("m", m).config("r_total", r_total).config("p", p)
      .config("cost_model", engine.cost.name);
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);

  std::printf("# B-abl-batch: N=%lld M=%lld, R_total=%lld in k batches, P=%d\n",
              static_cast<long long>(n), static_cast<long long>(m),
              static_cast<long long>(r_total), p);
  bench::Table table({"k_batches", "R_each", "t_ard[s]", "t_rd_refactor[s]", "rd/ard"});

  for (la::index_t k : args.smoke() ? std::vector<la::index_t>{1, 4, 16}
                                    : std::vector<la::index_t>{1, 4, 16, 64, 256}) {
    const la::index_t r_each = r_total / k;
    std::vector<la::Matrix> batches;
    for (la::index_t s = 0; s < k; ++s) {
      batches.push_back(btds::make_rhs(n, m, r_each, static_cast<std::uint64_t>(s + 1)));
    }
    std::vector<const la::Matrix*> ptrs;
    for (const auto& b : batches) ptrs.push_back(&b);

    const auto session = core::ard_session(sys, ptrs, p, {.engine = engine, .telemetry = live.handle()});
    double solve_sum = 0.0;
    for (double t : session.solve_vtimes) solve_sum += t;
    const double t_ard = session.factor_vtime + solve_sum;
    // Classic RD: factor + solve per batch.
    const double t_rd = static_cast<double>(k) * session.factor_vtime + solve_sum;
    table.add_row({bench::fmt_int(static_cast<double>(k)),
                   bench::fmt_int(static_cast<double>(r_each)), bench::fmt_sci(t_ard),
                   bench::fmt_sci(t_rd), bench::fmt(t_rd / t_ard)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: t_ard nearly flat in k (one factorization, same total\n"
              "solve work); rd/ard grows with k toward the F1 saturation level.\n");
  return 0;
}
