// Ablation B-abl-gemm: substrate sanity via google-benchmark. The library's
// claims are about flop-count *ratios*, so absolute GEMM speed does not
// change any conclusion — this bench documents the dense-kernel baseline
// (blocked vs naive GEMM, LU, block-Thomas solve) on the host.

#include <benchmark/benchmark.h>

#include "src/btds/generators.hpp"
#include "src/btds/thomas.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"
#include "src/la/random.hpp"

namespace {

using namespace ardbt;
using la::index_t;
using la::Matrix;

void BM_GemmBlocked(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Rng rng = la::make_rng(1);
  const Matrix a = la::random_uniform(n, n, rng);
  const Matrix b = la::random_uniform(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      la::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Rng rng = la::make_rng(2);
  const Matrix a = la::random_uniform(n, n, rng);
  const Matrix b = la::random_uniform(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    la::gemm_naive(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      la::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNaive)->Arg(16)->Arg(64)->Arg(256);

void BM_LuFactor(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Rng rng = la::make_rng(3);
  const Matrix a = la::random_diag_dominant(n, rng);
  for (auto _ : state) {
    la::LuFactors f = la::lu_factor(a.view());
    benchmark::DoNotOptimize(f.lu.data().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      la::lu_factor_flops(n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LuFactor)->Arg(16)->Arg(64)->Arg(128);

void BM_ThomasSolve(benchmark::State& state) {
  const index_t n = 256;
  const index_t m = state.range(0);
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto f = btds::ThomasFactorization::factor(sys);
  const auto b = btds::make_rhs(n, m, 16);
  for (auto _ : state) {
    la::Matrix x = f.solve(b);
    benchmark::DoNotOptimize(x.data().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      btds::ThomasFactorization::solve_flops(n, m, 16) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ThomasSolve)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
