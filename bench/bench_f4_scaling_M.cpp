// Experiment F4: runtime versus block size M at fixed N, P, R. Expected
// shape: the factor phase grows ~M^3, the per-RHS solve phase ~M^2, so
// their ratio — the achievable amortized speedup — grows ~M.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 64 : 1024;
  const la::index_t r = args.smoke() ? 8 : 64;
  const int p = args.smoke() ? 4 : 8;
  bench::JsonReport report(args, "bench_f4_scaling_M");
  bench::LiveStream live(args);
  report.config("n", n).config("r", r).config("p", p).config("cost_model", engine.cost.name);

  std::printf("# F4: runtime vs M (N=%lld, R=%lld, P=%d)\n", static_cast<long long>(n),
              static_cast<long long>(r), p);
  bench::Table table({"M", "t_factor[s]", "t_solve[s]", "factor/M^3 [ns]", "solve/(M^2 R) [ns]",
                      "factor/solve_per_rhs"});
  for (la::index_t m : args.smoke() ? std::vector<la::index_t>{2, 4, 8}
                                    : std::vector<la::index_t>{2, 4, 8, 16, 32, 64}) {
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
    const auto b = btds::make_rhs(n, m, r);
    const auto res = core::solve(core::Method::kArd, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    const double dm = static_cast<double>(m);
    const double solve_per_rhs = res.solve_vtime / static_cast<double>(r);
    table.add_row({bench::fmt_int(dm), bench::fmt_sci(res.factor_vtime),
                   bench::fmt_sci(res.solve_vtime),
                   bench::fmt(1e9 * res.factor_vtime / (dm * dm * dm)),
                   bench::fmt(1e9 * res.solve_vtime / (dm * dm * static_cast<double>(r))),
                   bench::fmt(res.factor_vtime / solve_per_rhs)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: factor/M^3 and solve/(M^2 R) approach constants (cubic\n"
              "and quadratic growth respectively); the last column — the speedup\n"
              "saturation level of F1 — grows roughly linearly in M.\n");
  return 0;
}
