// Experiment F2: strong scaling. Virtual-time runtime of RD (batched) and
// ARD (factor + solve) versus rank count P at fixed N, M, R, alongside the
// closed-form performance model. Expected shape: both fall like 1/P, then
// flatten on the log P communication floor; ARD stays below RD-per-RHS by
// the F1 factor with an identical curve shape.

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/perfmodel.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 64 : 4096;
  const la::index_t m = 16;
  const la::index_t r = args.smoke() ? 8 : 128;
  const int p_max = args.smoke() ? 4 : 1024;
  bench::JsonReport report(args, "bench_f2_strong_scaling");
  bench::LiveStream live(args);
  report.config("n", n).config("m", m).config("r", r).config("cost_model", engine.cost.name);
  const core::PerfModel model(engine.cost);
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, r);

  std::printf("# F2: strong scaling, N=%lld M=%lld R=%lld (%s, flop rate %.3g/s)\n",
              static_cast<long long>(n), static_cast<long long>(m), static_cast<long long>(r),
              engine.cost.name.c_str(), engine.cost.flop_rate);
  bench::Table table({"P", "t_factor[s]", "t_solve[s]", "t_ard[s]", "model_ard[s]",
                      "model_rd_per_rhs[s]", "speedup_vs_P1", "ideal"});

  double t1 = 0.0;
  for (int p = 1; p <= p_max; p *= 2) {
    const auto res = core::solve(core::Method::kArd, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    const double t_ard = res.factor_vtime + res.solve_vtime;
    if (p == 1) t1 = t_ard;
    const double model_ard =
        model.ard_factor_seconds(n, m, p) + model.ard_solve_seconds(n, m, r, p);
    table.add_row({bench::fmt_int(p), bench::fmt_sci(res.factor_vtime),
                   bench::fmt_sci(res.solve_vtime), bench::fmt_sci(t_ard),
                   bench::fmt_sci(model_ard), bench::fmt_sci(model.rd_per_rhs_seconds(n, m, r, p)),
                   bench::fmt(t1 / t_ard), bench::fmt_int(p)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: speedup_vs_P1 tracks `ideal` for small P and flattens\n"
              "when the log P merge term dominates; engine and model columns agree on\n"
              "shape (same flop counts, same alpha-beta charges).\n");
  return 0;
}
