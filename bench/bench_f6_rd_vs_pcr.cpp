// Experiment F6 (extension): accelerated recursive doubling vs
// accelerated parallel cyclic reduction. Both solvers get the paper's
// factor/solve split; the difference is the prefix structure: ARD's total
// work is O(M^3 N) spread over P ranks plus a log P tail, while PCR does
// O(M^3 (N/P) log N) — a log N factor more work — and caches every level.
// Expected shape: PCR loses by ~log2 N in both time and memory, with the
// gap widening as N grows; its per-RHS solve carries the same log N
// factor.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t m = 16;
  const la::index_t r = args.smoke() ? 8 : 64;
  const int p = args.smoke() ? 4 : 16;
  bench::JsonReport report(args, "bench_f6_rd_vs_pcr");
  bench::LiveStream live(args);
  report.config("m", m).config("r", r).config("p", p).config("cost_model", engine.cost.name);

  std::printf("# F6: ARD vs accelerated PCR (M=%lld, R=%lld, P=%d)\n",
              static_cast<long long>(m), static_cast<long long>(r), p);
  bench::Table table({"N", "ard_factor[s]", "pcr_factor[s]", "ard_solve[s]", "pcr_solve[s]",
                      "pcr/ard_total", "log2N"});
  for (la::index_t n : args.smoke() ? std::vector<la::index_t>{64, 128}
                                    : std::vector<la::index_t>{256, 1024, 4096, 16384}) {
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
    const auto b = btds::make_rhs(n, m, r);
    const auto ard = core::solve(core::Method::kArd, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    const auto pcr = core::solve(core::Method::kPcr, sys, b, p, {.engine = engine, .telemetry = live.handle()});
    double log2n = 0;
    for (la::index_t s = 1; s < n; s *= 2) log2n += 1;
    table.add_row({bench::fmt_int(static_cast<double>(n)), bench::fmt_sci(ard.factor_vtime),
                   bench::fmt_sci(pcr.factor_vtime), bench::fmt_sci(ard.solve_vtime),
                   bench::fmt_sci(pcr.solve_vtime),
                   bench::fmt((pcr.factor_vtime + pcr.solve_vtime) /
                              (ard.factor_vtime + ard.solve_vtime)),
                   bench::fmt_int(log2n)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: pcr/ard_total tracks ~log2 N / constant and grows with\n"
              "N; both methods remain accurate (see T3) — the contest is purely work.\n");
  return 0;
}
