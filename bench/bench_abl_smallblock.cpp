// Ablation B-abl-smallblock: wall-clock effect of the compile-time
// register-blocked small-block kernels (src/la/smallblock) on the
// factor-once / solve-many hot loops. For each dispatched block size M
// the block-Thomas factor and solve phases run with the microkernels
// enabled and disabled (the la::smallblock kill switch); both paths
// share the saxpy operation order, so the solutions must be
// bit-identical — the table reports the max abs diff alongside the
// speedups, and the run aborts if it is ever nonzero.
//
// The timings here are host wall-clock (the kernels are a per-rank
// serial resource; mpsim virtual time charges identical flops either
// way, so it cannot see this optimization).

#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/thomas.hpp"
#include "src/la/smallblock/smallblock.hpp"

namespace {

double max_abs_diff(const ardbt::la::Matrix& a, const ardbt::la::Matrix& b) {
  double d = 0.0;
  for (ardbt::la::index_t i = 0; i < a.rows(); ++i) {
    for (ardbt::la::index_t j = 0; j < a.cols(); ++j) {
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ardbt;
  namespace sb = la::smallblock;
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_abl_smallblock");

  // Shapes are cache-resident on purpose: the kernels are a compute
  // optimization, and oversized slabs turn both paths into the same DRAM
  // stream (the ratio then measures the memory bus, not the kernels).
  // Block counts shrink as M grows to hold the factored state near a few
  // MB; each timed measurement runs `iters` back-to-back passes sized by
  // a flop budget, and `reps` measurements keep the best.
  const la::index_t r = args.smoke() ? 4 : 16;
  const int reps = args.smoke() ? 2 : 5;
  const double flop_budget = args.smoke() ? 2.0e6 : 2.0e8;  // per timed measurement
  report.config("r", r).config("reps", reps).config("mode", args.smoke() ? "smoke" : "full");

  std::printf("# B-abl-smallblock: block-Thomas factor/solve, microkernels on vs off\n");
  std::printf("# wall-clock, best of %d; identical results required (max|diff| column)\n", reps);
  bench::Table table({"M", "N_blocks", "factor_off[s]", "factor_on[s]", "factor_x",
                      "solve_off[s]", "solve_on[s]", "solve_x", "max|diff|"});

  bool all_identical = true;
  for (la::index_t m : {2, 4, 8, 16, 32}) {
    const la::index_t n = std::max<la::index_t>(
        32, std::min<la::index_t>(16384, static_cast<la::index_t>(250000 / (m * m))));
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
    const la::Matrix b = btds::make_rhs(n, m, r, static_cast<std::uint64_t>(m));
    const double dm = static_cast<double>(m);
    const double dn = static_cast<double>(n);
    const int iters_factor =
        std::max(1, static_cast<int>(flop_budget / (5.0 * dn * dm * dm * dm)));
    const int iters_solve = std::max(
        1, static_cast<int>(flop_budget / (6.0 * dn * dm * dm * static_cast<double>(r))));

    double t_factor[2] = {1e300, 1e300};  // [off, on]
    double t_solve[2] = {1e300, 1e300};
    la::Matrix x[2];
    for (int on = 0; on < 2; ++on) {
      sb::set_enabled(on == 1);
      for (int rep = 0; rep < reps; ++rep) {
        bench::WallTimer tf;
        for (int it = 0; it < iters_factor; ++it) {
          const auto f = btds::ThomasFactorization::factor(sys);
        }
        t_factor[on] = std::min(t_factor[on], tf.seconds() / iters_factor);
      }
      const auto f = btds::ThomasFactorization::factor(sys);
      for (int rep = 0; rep < reps; ++rep) {
        bench::WallTimer ts;
        for (int it = 0; it < iters_solve; ++it) x[on] = f.solve(b);
        t_solve[on] = std::min(t_solve[on], ts.seconds() / iters_solve);
      }
    }
    sb::set_enabled(true);

    const double diff = max_abs_diff(x[0], x[1]);
    all_identical = all_identical && diff == 0.0;
    table.add_row({bench::fmt_int(static_cast<double>(m)),
                   bench::fmt_int(static_cast<double>(n)), bench::fmt_sci(t_factor[0]),
                   bench::fmt_sci(t_factor[1]), bench::fmt(t_factor[0] / t_factor[1]),
                   bench::fmt_sci(t_solve[0]), bench::fmt_sci(t_solve[1]),
                   bench::fmt(t_solve[0] / t_solve[1]), bench::fmt_sci(diff)});
  }
  table.print();
  report.add_table("main", table);
  report.set_section("identical", obs::Json(all_identical));
  report.write();

  if (!all_identical) {
    std::fprintf(stderr, "bench_abl_smallblock: FAIL: kernels changed the solution bits\n");
    return 1;
  }
  std::printf("\nExpected shapes: factor_x >= 1.5 and solve_x >= 1.3 for M in {4, 8, 16};\n"
              "max|diff| exactly 0 everywhere (determinism contract, docs/KERNELS.md).\n");
  return 0;
}
