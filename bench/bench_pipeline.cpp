// Ablation B-abl-pipeline: virtual-clock effect of the latency-hiding
// scan pipeline (docs/PARALLELISM.md) — RHS panels chunked and pipelined
// so panel k+1's rank-local reduction runs while panel k's vector scan
// replay is in flight, with the forward/backward scan rounds interleaved
// — against the batch scheduler on the same comm-bound cost model.
//
// Timings are modeled seconds on the deterministic ChargedFlops clock
// under a FIXED bandwidth-bound cost model (never host-calibrated: the
// committed baseline must reproduce bit-exactly on any machine). The
// pipeline is only a schedule change, so the solutions must be
// bit-identical on vs off — the table reports max|diff| and the run
// aborts if it is ever nonzero. wait_frac is the blocked share of the
// attribution critical path (wait + in-flight comm over makespan);
// overlap must shrink it.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/core/solver.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/trace.hpp"

namespace {

double max_abs_diff(const ardbt::la::Matrix& a, const ardbt::la::Matrix& b) {
  double d = 0.0;
  for (ardbt::la::index_t i = 0; i < a.rows(); ++i) {
    for (ardbt::la::index_t j = 0; j < a.cols(); ++j) {
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
    }
  }
  return d;
}

struct Measured {
  double factor_s = 0.0;
  double solve_s = 0.0;
  double wait_frac = 0.0;
  ardbt::la::Matrix x;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ardbt;
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_pipeline");

  // Comm-bound on purpose: slow wire (30 us/kB), modest latency, fast
  // cores. On a latency-bound model chunking LOSES — each extra panel
  // pays log2(P) unhidden alphas — so this is also the honest regime for
  // the ablation: the win must come from hiding the beta*bytes term.
  const mpsim::CostModel cost{
      .alpha = 2e-6, .beta = 3e-8, .flop_rate = 4e9, .name = "pipe_commbound"};
  const int p = 8;
  const int reps = 1;  // virtual clock: deterministic, one rep is exact
  report.config("p", static_cast<std::int64_t>(p))
      .config("alpha", cost.alpha)
      .config("beta", cost.beta)
      .config("flop_rate", cost.flop_rate)
      .config("mode", args.smoke() ? "smoke" : "full");

  std::printf("# B-abl-pipeline: ARD solve(B), batch scheduler vs latency-hiding pipeline\n");
  std::printf("# virtual clock (ChargedFlops), model %s: alpha=%.0e beta=%.0e flops=%.0e, "
              "P=%d\n", cost.name.c_str(), cost.alpha, cost.beta, cost.flop_rate, p);
  // First column is the row key for perf_gate.py, so it must be unique.
  bench::Table table({"NxMxR", "chunk", "factor_off[s]", "factor_on[s]",
                      "solve_off[s]", "solve_on[s]", "solve_x", "wait_off", "wait_on",
                      "max|diff|"});

  struct Shape {
    la::index_t n, m, r, chunk;
  };
  const std::vector<Shape> shapes = args.smoke()
      ? std::vector<Shape>{{64, 8, 16, 4}}
      : std::vector<Shape>{{64, 8, 32, 8}, {128, 8, 64, 8}, {64, 16, 32, 8}, {128, 16, 64, 16}};

  bool all_identical = true;
  double worst_solve_x = 1e300;
  bool wait_shrinks = true;
  for (const Shape& s : shapes) {
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, s.n, s.m);
    const la::Matrix b = btds::make_rhs(s.n, s.m, s.r, static_cast<std::uint64_t>(s.m));

    Measured run[2];  // [off, on]
    for (int on = 0; on < 2; ++on) {
      mpsim::EngineOptions engine;
      engine.timing = mpsim::TimingMode::ChargedFlops;
      engine.cost = cost;
      obs::Tracer tracer;
      engine.tracer = &tracer;
      core::ArdOptions opts;
      opts.pipeline.overlap = on == 1;
      opts.pipeline.chunk_cols = on == 1 ? s.chunk : 0;
      (void)reps;
      auto res = core::solve(core::Method::kArd, sys, b, p, {.ard = opts, .engine = engine});
      const obs::Attribution a = obs::analyze(tracer);
      const obs::CriticalPath& cp = a.critical_path;
      run[on] = {res.factor_vtime, res.solve_vtime,
                 cp.length_s > 0.0 ? (cp.wait_s + cp.comm_s) / cp.length_s : 0.0,
                 std::move(res.x)};
    }

    const double diff = max_abs_diff(run[0].x, run[1].x);
    all_identical = all_identical && diff == 0.0;
    const double solve_x = run[0].solve_s / run[1].solve_s;
    worst_solve_x = std::min(worst_solve_x, solve_x);
    wait_shrinks = wait_shrinks && run[1].wait_frac < run[0].wait_frac;
    const std::string shape = std::to_string(s.n) + "x" + std::to_string(s.m) + "x" +
                              std::to_string(s.r);
    table.add_row({shape, bench::fmt_int(static_cast<double>(s.chunk)),
                   bench::fmt_sci(run[0].factor_s), bench::fmt_sci(run[1].factor_s),
                   bench::fmt_sci(run[0].solve_s), bench::fmt_sci(run[1].solve_s),
                   bench::fmt(solve_x), bench::fmt(run[0].wait_frac),
                   bench::fmt(run[1].wait_frac), bench::fmt_sci(diff)});
  }
  table.print();
  report.add_table("main", table);
  report.set_section("identical", obs::Json(all_identical));
  report.set_section("wait_frac_shrinks", obs::Json(wait_shrinks));
  report.write();

  if (!all_identical) {
    std::fprintf(stderr, "bench_pipeline: FAIL: pipeline changed the solution bits\n");
    return 1;
  }
  std::printf("\nExpected shapes: solve_x >= 1.2 on every row (worst here: %.2f), wait_on\n"
              "< wait_off everywhere, max|diff| exactly 0 (docs/PARALLELISM.md).\n",
              worst_solve_x);
  return 0;
}
