#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/perfmodel.hpp"
#include "src/mpsim/engine.hpp"
#include "src/obs/live/telemetry.hpp"
#include "src/obs/run_report.hpp"

/// \file bench_common.hpp
/// Shared plumbing for the experiment-reproduction binaries (one binary
/// per table/figure of DESIGN.md section 4). Each binary prints the
/// rows/series the paper-style experiment reports; EXPERIMENTS.md records
/// the expected shapes. Every binary parses its command line with
/// bench::Args (so they all accept the same flags, `--json FILE` and
/// `--threads T`, and reject typos with a nearest-flag suggestion) and
/// mirrors its printed tables into an ardbt.run_report v1 document via
/// JsonReport, so plots and CI trend checks parse JSON instead of
/// scraping markdown.

namespace ardbt::bench {

/// Shared command line of every experiment binary:
///   --json FILE    mirror the printed tables into an ardbt.run_report v2
///   --history FILE append the same document as one line of an append-only
///                  ardbt.bench_history JSONL file (the perf-gate baseline
///                  format: the trajectory accumulates one entry per run)
///   --threads T    worker threads per rank for pool-aware sections
///   --smoke        tiny problem shapes, for CI smoke runs
///   --live-out F   stream live telemetry (ardbt.log + metric snapshots,
///                  JSONL) to F while the experiment's sessions run
///   --live-period S  virtual seconds between metric snapshots (0 = one
///                  snapshot after every engine run)
///   --help/--list  usage
/// Unknown flags exit(2) with a nearest-flag suggestion (edit distance),
/// matching the ardbt CLI's behavior; malformed numeric values take the
/// structured `error: [invalid-argument]` path with exit 1.
class Args {
 public:
  Args(int argc, char** argv) : program_(argc > 0 ? argv[0] : "bench") {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) die(flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--help" || flag == "--list") {
        std::printf("usage: %s [--json FILE] [--history FILE] [--threads T] [--smoke]\n",
                    program_.c_str());
        std::exit(0);
      } else if (flag == "--json") {
        json_path_ = next();
      } else if (flag == "--history") {
        history_path_ = next();
      } else if (flag == "--threads") {
        threads_ = parse_positive_int(flag, next());
      } else if (flag == "--live-out") {
        live_out_ = next();
      } else if (flag == "--live-period") {
        live_period_ = parse_nonnegative_double(flag, next());
      } else if (flag == "--smoke") {
        smoke_ = true;
      } else {
        die_unknown(flag);
      }
    }
  }

  const std::string& json_path() const { return json_path_; }
  const std::string& history_path() const { return history_path_; }
  /// Worker threads per rank (EngineOptions::threads_per_rank).
  int threads() const { return threads_; }
  /// Shrink the sweep to a seconds-scale shape (ctest smoke runs).
  bool smoke() const { return smoke_; }
  /// Live-telemetry JSONL path ("" = off); see LiveStream below.
  const std::string& live_out() const { return live_out_; }
  /// Virtual seconds between metric snapshots (0 = one per engine run).
  double live_period() const { return live_period_; }

 private:
  static constexpr const char* kFlags[] = {"--json",     "--history",     "--threads",
                                           "--live-out", "--live-period", "--smoke",
                                           "--help",     "--list"};

  /// Strict parse of a positive integer flag value: the whole token must
  /// be a decimal number >= 1. Garbage, zero, and negative values take
  /// the structured error path (exit 1), matching the ardbt CLI.
  int parse_positive_int(const std::string& flag, const std::string& text) const {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE || v < 1 ||
        v > std::numeric_limits<int>::max()) {
      std::fprintf(stderr, "%s: error: [invalid-argument] %s expects a positive integer, got '%s'\n",
                   program_.c_str(), flag.c_str(), text.c_str());
      std::exit(1);
    }
    return static_cast<int>(v);
  }

  /// Strict parse of a nonnegative double flag value.
  double parse_nonnegative_double(const std::string& flag, const std::string& text) const {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE || v < 0.0 || !std::isfinite(v)) {
      std::fprintf(stderr,
                   "%s: error: [invalid-argument] %s expects a nonnegative number, got '%s'\n",
                   program_.c_str(), flag.c_str(), text.c_str());
      std::exit(1);
    }
    return v;
  }

  [[noreturn]] void die(const std::string& message) const {
    std::fprintf(stderr, "%s: %s (try --help)\n", program_.c_str(), message.c_str());
    std::exit(2);
  }

  /// Classic dynamic-programming edit distance, for flag suggestions.
  static std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t diag = row[0];
      row[0] = i;
      for (std::size_t j = 1; j <= b.size(); ++j) {
        const std::size_t up = row[j];
        const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
        row[j] = std::min({row[j - 1] + 1, up + 1, sub});
        diag = up;
      }
    }
    return row[b.size()];
  }

  [[noreturn]] void die_unknown(const std::string& flag) const {
    const char* best = nullptr;
    std::size_t best_dist = flag.size();  // suggest only when reasonably close
    for (const char* candidate : kFlags) {
      const std::size_t d = edit_distance(flag, candidate);
      if (d < best_dist) {
        best_dist = d;
        best = candidate;
      }
    }
    std::string message = "unknown flag '" + flag + "'";
    if (best != nullptr && best_dist <= 3) {
      message += "; did you mean '" + std::string(best) + "'?";
    }
    die(message);
  }

  std::string program_;
  std::string json_path_;
  std::string history_path_;
  std::string live_out_;
  double live_period_ = 0.0;
  int threads_ = 1;
  bool smoke_ = false;
};

/// Owner for the `--live-out` stream of an experiment binary: one private
/// metrics registry plus the standard live-telemetry chain (structured
/// log, flight recorder, snapshotter, watchdogs) streaming to the flag's
/// JSONL path. Without the flag every method is an inert no-op, so
/// binaries construct one unconditionally and pass handle() to each
/// Session (or the core::solve / core::ard_session conveniences) they
/// drive. close() flushes the log, forces a final metric snapshot, and
/// prints a one-line note; the destructor is the backstop.
class LiveStream {
 public:
  explicit LiveStream(const Args& args) {
    if (args.live_out().empty()) return;
    obs::live::LiveTelemetry::Options options;
    options.live_path = args.live_out();
    options.snapshot.period_s = args.live_period();
    path_ = args.live_out();
    live_ = std::make_unique<obs::live::LiveTelemetry>(std::move(options), &registry_);
  }

  LiveStream(const LiveStream&) = delete;
  LiveStream& operator=(const LiveStream&) = delete;

  ~LiveStream() { close(); }

  bool enabled() const { return live_ != nullptr; }

  /// Handle for Session::set_telemetry (inert default when disabled).
  obs::live::Telemetry handle() {
    return enabled() ? live_->handle() : obs::live::Telemetry{};
  }

  /// Flush and report (idempotent; no-op when disabled).
  void close() {
    if (!enabled() || closed_) return;
    live_->close();
    std::printf("\n[live telemetry: %s (%llu log records, %llu snapshots)]\n", path_.c_str(),
                static_cast<unsigned long long>(live_->log().records_written()),
                static_cast<unsigned long long>(live_->snapshotter().snapshots_written()));
    closed_ = true;
  }

 private:
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::live::LiveTelemetry> live_;
  std::string path_;
  bool closed_ = false;
};

/// Engine options for the virtual-time experiments: deterministic
/// charged-flops timing on the IPDPS-2014-era machine profile, with the
/// flop rate calibrated to this host's dense-kernel throughput so virtual
/// seconds are meaningful. (The host kernel's thread-CPU clock ticks at
/// ~10 ms, too coarse for per-phase measurement, so charged-flops mode is
/// the primary mode; see DESIGN.md substitutions.)
inline mpsim::EngineOptions virtual_engine() {
  static const mpsim::CostModel calibrated =
      core::PerfModel::calibrate(mpsim::CostModel::cluster2014());
  mpsim::EngineOptions options;
  options.cost = calibrated;
  options.timing = mpsim::TimingMode::ChargedFlops;
  return options;
}

/// Wall-clock timer for single-run measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal fixed-width table printer (markdown-ish, easy to diff).
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void print() const {
    print_row(headers_);
    std::string sep;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += (c == 0 ? "|" : "");
      sep += std::string(width(c) + 2, '-') + "|";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::size_t width(std::size_t c) const {
    std::size_t w = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) w = std::max(w, row[c].size());
    }
    return w;
  }
  void print_row(const std::vector<std::string>& row) const {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(width(c) - cell.size(), ' ') + " |";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers.
inline std::string fmt(double v, const char* f = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}
inline std::string fmt_int(double v) { return fmt(v, "%.0f"); }
inline std::string fmt_sci(double v) { return fmt(v, "%.2e"); }

/// Machine-readable companion to the printed tables. Construct from the
/// parsed Args: when the binary was invoked with `--json FILE`, every
/// add_table()/config()/set_section() call lands in an ardbt.run_report
/// v2 document written to FILE by write() (or the destructor as a
/// backstop); `--history FILE` appends the same document as one compact
/// line of an append-only ardbt.bench_history JSONL file instead of (or
/// in addition to) overwriting a standalone report. Without either flag
/// everything is a no-op.
class JsonReport {
 public:
  JsonReport(const Args& args, std::string experiment)
      : path_(args.json_path()), history_path_(args.history_path()),
        builder_(std::move(experiment)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() {
    try {
      write();
    } catch (...) {  // NOLINT(bugprone-empty-catch) — destructor backstop
    }
  }

  bool enabled() const { return !path_.empty() || !history_path_.empty(); }

  JsonReport& config(const std::string& key, obs::Json value) {
    if (enabled()) builder_.config(key, std::move(value));
    return *this;
  }

  JsonReport& set_section(const std::string& key, obs::Json value) {
    if (enabled()) builder_.set_section(key, std::move(value));
    return *this;
  }

  /// Record a printed table as "tables.<name>": one object per row keyed
  /// by column header (cells stay formatted strings — the JSON mirrors
  /// what the human sees).
  JsonReport& add_table(const std::string& name, const Table& table) {
    if (!enabled()) return *this;
    obs::Json rows = obs::Json::array();
    for (const auto& row : table.rows()) {
      obs::Json obj = obs::Json::object();
      for (std::size_t c = 0; c < table.headers().size(); ++c) {
        obj.set(table.headers()[c], c < row.size() ? obs::Json(row[c]) : obs::Json());
      }
      rows.push(std::move(obj));
    }
    tables_.set(name, std::move(rows));
    return *this;
  }

  /// Write the report (idempotent; no-op without --json/--history).
  void write() {
    if (!enabled() || written_) return;
    if (tables_.size() > 0) builder_.set_section("tables", tables_);
    if (!path_.empty()) {
      builder_.write(path_);
      std::printf("\n[json report: %s]\n", path_.c_str());
    }
    if (!history_path_.empty()) {
      obs::append_history_line(history_path_, builder_.build());
      std::printf("\n[bench history: appended to %s]\n", history_path_.c_str());
    }
    written_ = true;
  }

 private:
  std::string path_;
  std::string history_path_;
  obs::RunReportBuilder builder_;
  obs::Json tables_ = obs::Json::object();
  bool written_ = false;
};

}  // namespace ardbt::bench
