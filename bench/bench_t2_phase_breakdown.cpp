// Experiment T2: phase breakdown and amortization. Factor cost vs
// per-batch solve cost across rank counts, and the amortized per-RHS cost
// as more batches reuse one factorization — the time-stepping scenario
// that motivates ARD.

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 64 : 2048;
  const la::index_t m = args.smoke() ? 8 : 32;
  const la::index_t r = args.smoke() ? 8 : 128;  // per batch
  const int num_batches = 4;
  bench::JsonReport report(args, "bench_t2_phase_breakdown");
  report.config("n", n).config("m", m).config("r", r).config("num_batches", num_batches)
      .config("cost_model", engine.cost.name);

  std::printf("# T2: phase breakdown, N=%lld M=%lld, %d batches of R=%lld\n",
              static_cast<long long>(n), static_cast<long long>(m), num_batches,
              static_cast<long long>(r));
  bench::Table table({"P", "t_factor[s]", "t_solve_batch[s]", "factor/solve", "amortized_1",
                      "amortized_4", "rd_rebuild_4"});

  std::vector<la::Matrix> batches;
  for (int s = 0; s < num_batches; ++s) {
    batches.push_back(btds::make_rhs(n, m, r, static_cast<std::uint64_t>(s + 1)));
  }
  std::vector<const la::Matrix*> ptrs;
  for (const auto& b : batches) ptrs.push_back(&b);

  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  for (int p : args.smoke() ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16, 64}) {
    const auto session = core::ard_session(sys, ptrs, p, {}, engine);
    double solve_sum = 0.0;
    for (double t : session.solve_vtimes) solve_sum += t;
    const double avg_solve = solve_sum / num_batches;
    const double amortized1 = session.factor_vtime + session.solve_vtimes[0];
    const double amortized4 = session.factor_vtime + solve_sum;
    // Classic RD re-factors for every batch.
    const double rd4 = num_batches * (session.factor_vtime + avg_solve);
    table.add_row({bench::fmt_int(p), bench::fmt_sci(session.factor_vtime),
                   bench::fmt_sci(avg_solve), bench::fmt(session.factor_vtime / avg_solve),
                   bench::fmt_sci(amortized1), bench::fmt_sci(amortized4), bench::fmt_sci(rd4)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: factor/solve stays roughly constant in P (both phases\n"
              "share the N/P + log P structure); rd_rebuild_4 exceeds amortized_4 by a\n"
              "factor approaching (1 + factor/solve) as batches accumulate.\n");
  return 0;
}
