// Experiment T2: phase breakdown and amortization. Factor cost vs
// per-batch solve cost across rank counts, and the amortized per-RHS cost
// as more batches reuse one factorization — the time-stepping scenario
// that motivates ARD.
//
// Phase times come from the tracer's attribution layer (obs::analyze):
// every rank's driver.factor / driver.solve spans are aggregated into the
// deterministic per-phase stats, and the critical-path / wait columns
// show where the session's makespan actually went — the same numbers the
// CLI exports in run_report v2, so this bench measures what it reports.

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"
#include "src/obs/attribution.hpp"

int main(int argc, char** argv) {
  using namespace ardbt;
  const auto engine = bench::virtual_engine();
  const bench::Args args(argc, argv);
  const la::index_t n = args.smoke() ? 64 : 2048;
  const la::index_t m = args.smoke() ? 8 : 32;
  const la::index_t r = args.smoke() ? 8 : 128;  // per batch
  const int num_batches = 4;
  bench::JsonReport report(args, "bench_t2_phase_breakdown");
  bench::LiveStream live(args);
  report.config("n", n).config("m", m).config("r", r).config("num_batches", num_batches)
      .config("cost_model", engine.cost.name);

  std::printf("# T2: phase breakdown, N=%lld M=%lld, %d batches of R=%lld\n",
              static_cast<long long>(n), static_cast<long long>(m), num_batches,
              static_cast<long long>(r));
  bench::Table table({"P", "t_factor[s]", "t_solve_batch[s]", "factor/solve", "amortized_1",
                      "amortized_4", "rd_rebuild_4", "cp_comm_frac", "wait_frac"});

  std::vector<la::Matrix> batches;
  for (int s = 0; s < num_batches; ++s) {
    batches.push_back(btds::make_rhs(n, m, r, static_cast<std::uint64_t>(s + 1)));
  }

  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  for (int p : args.smoke() ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16, 64}) {
    // Fresh tracer per rank count: one session timeline (factor, then
    // every solve batch) to attribute.
    obs::Tracer tracer;
    auto eng = engine;
    eng.tracer = &tracer;
    eng.threads_per_rank = args.threads();
    core::Session session(core::Method::kArd, sys, p, {.engine = eng});
    if (live.enabled()) session.set_telemetry(live.handle());
    session.factor();
    for (const auto& b : batches) (void)session.solve(b);

    const obs::Attribution attr = obs::analyze(tracer);
    const obs::PhaseStats& factor = attr.phases.at("driver.factor");
    const obs::PhaseStats& solve = attr.phases.at("driver.solve");
    // Spans are barrier-aligned, so the slowest rank's factor span is the
    // phase's elapsed time and the mean solve span is the per-batch time.
    const double t_factor = factor.max_s;
    const double avg_solve = solve.total_s / static_cast<double>(solve.count);
    const double amortized1 = t_factor + avg_solve;
    const double amortized4 = t_factor + num_batches * avg_solve;
    // Classic RD re-factors for every batch.
    const double rd4 = num_batches * (t_factor + avg_solve);
    double wait_sum = 0.0;
    for (const obs::RankBreakdown& rb : attr.ranks) wait_sum += rb.wait_s;
    const double wait_frac =
        attr.makespan_s > 0.0
            ? wait_sum / (static_cast<double>(attr.nranks) * attr.makespan_s)
            : 0.0;
    const obs::CriticalPath& cp = attr.critical_path;
    const double cp_comm = cp.length_s > 0.0 ? cp.comm_s / cp.length_s : 0.0;
    table.add_row({bench::fmt_int(p), bench::fmt_sci(t_factor), bench::fmt_sci(avg_solve),
                   bench::fmt(t_factor / avg_solve), bench::fmt_sci(amortized1),
                   bench::fmt_sci(amortized4), bench::fmt_sci(rd4), bench::fmt(cp_comm),
                   bench::fmt(wait_frac)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: factor/solve stays roughly constant in P (both phases\n"
              "share the N/P + log P structure); rd_rebuild_4 exceeds amortized_4 by a\n"
              "factor approaching (1 + factor/solve) as batches accumulate; cp_comm_frac\n"
              "and wait_frac grow with P as the log P scan rounds take over — the\n"
              "overlappable share a pipelined scan could hide.\n");
  return 0;
}
