// Experiment T1: complexity validation. Cross-checks the analytic
// per-rank work model (core/flops.hpp) against the flops the solver
// actually charges, and reports communication volume and factored-state
// memory — the table backing the O(M^3 (N/P + log P)) factor /
// O(M^2 R (N/P + log P)) solve claims.

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/ard.hpp"
#include "src/core/flops.hpp"
#include "src/mpsim/collectives.hpp"

namespace {

using namespace ardbt;

struct Sample {
  double factor_flops = 0.0;
  double solve_flops = 0.0;
  double msgs = 0.0;
  double bytes = 0.0;
  double storage = 0.0;
};

Sample measure(la::index_t n, la::index_t m, int p, la::index_t r) {
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, r);
  la::Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(n, p);
  Sample sample;

  mpsim::run(
      p,
      [&](mpsim::Comm& comm) {
        const double f0 = comm.stats().flops_charged;
        const auto f = core::ArdFactorization::factor(comm, sys, part);
        mpsim::barrier(comm);
        const double f1 = comm.stats().flops_charged;
        f.solve(comm, b, x);
        mpsim::barrier(comm);
        const double f2 = comm.stats().flops_charged;
        if (comm.rank() == 0) {
          sample.factor_flops = f1 - f0;
          sample.solve_flops = f2 - f1;
          sample.storage = static_cast<double>(f.storage_bytes());
          sample.msgs = static_cast<double>(comm.stats().msgs_sent);
          sample.bytes = static_cast<double>(comm.stats().bytes_sent);
        }
      },
      bench::virtual_engine());
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_t1_complexity");
  report.config("cost_model", bench::virtual_engine().cost.name);
  std::printf("# T1: measured vs modeled per-rank work, communication, memory (rank 0)\n");
  bench::Table table({"N", "M", "P", "R", "factor_meas", "factor_model", "f_ratio",
                      "solve_meas", "solve_model", "s_ratio", "msgs", "MB_sent", "MB_state"});

  struct Config {
    la::index_t n, m, r;
    int p;
  };
  const std::vector<Config> configs =
      args.smoke() ? std::vector<Config>{{64, 4, 4, 2}, {64, 8, 4, 4}}
                   : std::vector<Config>{
                         {512, 8, 16, 1},   {512, 8, 16, 4},   {512, 8, 16, 16},
                         {2048, 8, 16, 16}, {2048, 16, 16, 16}, {2048, 32, 16, 16},
                         {2048, 16, 64, 16}, {2048, 16, 256, 16}, {2048, 16, 1024, 16},
                         {4096, 16, 64, 32},
                     };
  for (const Config& c : configs) {
    const Sample s = measure(c.n, c.m, c.p, c.r);
    const double fm = core::flops::ard_factor(c.n, c.m, c.p);
    const double sm = core::flops::ard_solve(c.n, c.m, c.r, c.p);
    table.add_row({bench::fmt_int(static_cast<double>(c.n)),
                   bench::fmt_int(static_cast<double>(c.m)), bench::fmt_int(c.p),
                   bench::fmt_int(static_cast<double>(c.r)), bench::fmt_sci(s.factor_flops),
                   bench::fmt_sci(fm), bench::fmt(s.factor_flops / fm),
                   bench::fmt_sci(s.solve_flops), bench::fmt_sci(sm),
                   bench::fmt(s.solve_flops / sm), bench::fmt_int(s.msgs),
                   bench::fmt(s.bytes / 1e6), bench::fmt(s.storage / 1e6)});
  }
  table.print();
  report.add_table("main", table);
  report.write();
  std::printf("\nExpected shapes: f_ratio and s_ratio within ~[0.5, 1.5] (the model is a\n"
              "per-rank critical path; rank 0 executes slightly fewer merges at some P);\n"
              "msgs grows like log P; state ~ M^2 N/P.\n");
  return 0;
}
