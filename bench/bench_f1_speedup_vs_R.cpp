// Experiment F1 (headline): ARD speedup over classic per-RHS recursive
// doubling as a function of the number of right-hand sides R, for several
// block sizes M. Reproduces the paper's central claim: speedup ~ R for
// small R, saturating near the factor/solve cost ratio (~ 2M).
//
// Method: one engine session per M — factor once, then solve batches of
// width R. Classic RD solving R right-hand sides one at a time costs
// exactly R * (t_factor + t_solve(R=1)) by construction (it is a loop of
// identical solves); we validate that identity directly at R = 4 before
// using it for large R, which keeps the bench inside a laptop budget.
//
// A second section measures intra-rank threading: wall-clock time of one
// wide ARD solve (M = 32, R = 1024) at several per-rank worker counts,
// with a bitwise comparison against the single-threaded solution.
// Wall-clock speedup obviously needs physical cores; the section prints
// hardware_concurrency so single-core container runs read as what they
// are. Virtual times and solutions are identical at every worker count.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/core/flops.hpp"
#include "src/core/solver.hpp"

namespace {

using namespace ardbt;

void run_for_block_size(la::index_t m, bool smoke, bench::JsonReport& report,
                        const obs::live::Telemetry& live) {
  const la::index_t n = smoke ? 64 : 512;
  const int p = 4;
  // Smoke keeps rs[2] == 4 so the RD-per-RHS identity check below still runs.
  const std::vector<la::index_t> rs =
      smoke ? std::vector<la::index_t>{1, 2, 4, 8}
            : std::vector<la::index_t>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  std::vector<la::Matrix> batches;
  batches.reserve(rs.size());
  for (la::index_t r : rs) batches.push_back(btds::make_rhs(n, m, r, /*seed=*/r));
  std::vector<const la::Matrix*> batch_ptrs;
  for (const auto& b : batches) batch_ptrs.push_back(&b);

  const auto session = core::ard_session(sys, batch_ptrs, p,
                                         {.engine = bench::virtual_engine(), .telemetry = live});
  const double t_factor = session.factor_vtime;
  const double t_solve1 = session.solve_vtimes[0];

  // Validate the RD-per-RHS linearity identity at R = 4.
  const auto direct = core::solve(core::Method::kRdPerRhs, sys, batches[2], p,
                                  {.engine = bench::virtual_engine(), .telemetry = live});
  const double t_direct = direct.solve_vtime;
  const double t_identity = 4.0 * (t_factor + t_solve1);

  std::printf("\n### F1, M = %lld (N = %lld, P = %d)\n", static_cast<long long>(m),
              static_cast<long long>(n), p);
  std::printf("factor = %.4gs, solve(R=1) = %.4gs; RD-per-RHS identity check at R=4: "
              "direct %.4gs vs R*(f+s1) %.4gs (ratio %.3f)\n",
              t_factor, t_solve1, t_direct, t_identity, t_direct / t_identity);

  bench::Table table({"R", "t_ard[s]", "t_rd_per_rhs[s]", "speedup", "model_speedup"});
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const la::index_t r = rs[i];
    const double t_ard = t_factor + session.solve_vtimes[i];
    const double t_rd = static_cast<double>(r) * (t_factor + t_solve1);
    table.add_row({bench::fmt_int(static_cast<double>(r)), bench::fmt_sci(t_ard),
                   bench::fmt_sci(t_rd), bench::fmt(t_rd / t_ard),
                   bench::fmt(core::flops::predicted_speedup(n, m, r, p))});
  }
  table.print();
  report.add_table("M=" + std::to_string(m), table);
}

// Wall-clock scaling of the solve phase with per-rank worker threads.
// P = 1 keeps the host's cores for the pool (with P simulated rank
// threads plus pools the run would oversubscribe), and makes the whole
// solve the panel-parallel hot path.
void run_threads_scaling(bool smoke, bench::JsonReport& report,
                         const obs::live::Telemetry& live) {
  const la::index_t n = smoke ? 32 : 128, m = 32, r = smoke ? 32 : 1024;
  const int p = 1;
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const la::Matrix b = btds::make_rhs(n, m, r, /*seed=*/7);

  std::printf("\n### F1-threads: solve wall time vs per-rank workers "
              "(N = %lld, M = %lld, R = %lld, P = %d)\n",
              static_cast<long long>(n), static_cast<long long>(m),
              static_cast<long long>(r), p);
  std::printf("host hardware_concurrency = %u (wall speedup needs physical cores; "
              "solutions are bit-identical regardless)\n",
              std::thread::hardware_concurrency());

  la::Matrix reference;
  double t1 = 0.0;
  bench::Table table({"workers", "t_solve_wall[s]", "speedup", "bit_identical"});
  for (int workers : smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8}) {
    mpsim::EngineOptions engine = bench::virtual_engine();
    engine.threads_per_rank = workers;
    core::Session session(core::Method::kArd, sys, p, {.engine = engine});
    if (live.any()) session.set_telemetry(live);
    session.factor();
    session.solve(b);  // warm up pool + caches
    const bench::WallTimer timer;
    const la::Matrix x = session.solve(b);
    const double t = timer.seconds();
    if (workers == 1) {
      reference = x;
      t1 = t;
    }
    table.add_row({bench::fmt_int(workers), bench::fmt_sci(t), bench::fmt(t1 / t),
                   x == reference ? "yes" : "NO"});
  }
  table.print();
  report.add_table("threads_scaling", table);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_f1_speedup_vs_R");
  bench::LiveStream live(args);
  report.config("n", args.smoke() ? 64 : 512)
      .config("p", 4)
      .config("cost_model", bench::virtual_engine().cost.name);
  std::printf("# F1: ARD speedup over per-RHS recursive doubling vs R\n");
  std::printf("# (virtual time, calibrated %s)\n",
              bench::virtual_engine().cost.name.c_str());
  for (la::index_t m : args.smoke() ? std::vector<la::index_t>{4, 8}
                                    : std::vector<la::index_t>{4, 8, 16, 32}) {
    run_for_block_size(m, args.smoke(), report, live.handle());
  }
  run_threads_scaling(args.smoke(), report, live.handle());
  report.write();
  live.close();
  return 0;
}
