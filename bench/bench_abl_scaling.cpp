// Ablation B-abl-scaling: why the prefix operator and its normalization
// matter. Three tiers on the same problems:
//   1. shooting prefix                — collapses by N ~ 50;
//   2. transfer-matrix RD, unscaled   — overflows near N ~ 540 (3.7^N);
//   3. transfer-matrix RD, rescaled   — finite but degrades for block
//                                        systems with spectral spread;
//   4. two-port ARD                   — machine precision at every N.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_common.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/shooting.hpp"
#include "src/core/solver.hpp"

namespace {

using namespace ardbt;

std::string guarded(const btds::BlockTridiag& sys, const la::Matrix& b,
                    const std::function<la::Matrix()>& solver) {
  try {
    const double res = btds::relative_residual(sys, solver(), b);
    if (!std::isfinite(res)) return "overflow";
    if (res > 1.0) return "garbage";
    return bench::fmt_sci(res);
  } catch (const std::exception&) {
    return "fail";
  }
}

void sweep(la::index_t m, bool smoke, const char* label, bench::JsonReport& report,
           const obs::live::Telemetry& live) {
  std::printf("\n### %s (M = %lld)\n", label, static_cast<long long>(m));
  bench::Table table({"N", "shooting", "transfer_noscale", "transfer_rescaled", "ard_twoport"});
  for (la::index_t n : smoke ? std::vector<la::index_t>{16, 32, 64}
                             : std::vector<la::index_t>{16, 32, 64, 128, 256, 512, 1024}) {
    const auto sys = btds::make_problem(btds::ProblemKind::kPoisson2D, n, m);
    const auto b = btds::make_rhs(n, m, 2);
    table.add_row(
        {bench::fmt_int(static_cast<double>(n)),
         guarded(sys, b, [&] { return core::shooting_solve(sys, b); }),
         guarded(sys, b,
                 [&] {
                   return core::solve(core::Method::kTransferRd, sys, b, 2,
                                      {.ard = {.rescale = false}, .telemetry = live})
                       .x;
                 }),
         guarded(sys, b,
                 [&] {
                   return core::solve(core::Method::kTransferRd, sys, b, 2, {.telemetry = live}).x;
                 }),
         guarded(sys, b,
                 [&] { return core::solve(core::Method::kArd, sys, b, 2, {.telemetry = live}).x; })});
  }
  table.print();
  report.add_table("M=" + std::to_string(m), table);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::JsonReport report(args, "bench_abl_scaling");
  bench::LiveStream live(args);
  std::printf("# B-abl-scaling: prefix-operator stability tiers (2-D Poisson family)\n");
  sweep(1, args.smoke(),
        "scalar blocks: a single growing mode, so rescaled transfer RD survives", report,
        live.handle());
  sweep(4, args.smoke(),
        "block size 4: spectral spread kills the transfer pair, two-port unaffected", report,
        live.handle());
  report.write();
  live.close();
  return 0;
}
